"""Figure 2 — average sampling cost (edges evaluated per step).

Paper: on the exponential temporal walk, full-scan sampling
(GraphWalker) evaluates 19,046 edges/step, rejection sampling
(KnightKing) 11,071, TEA's hybrid sampling 5.5 — full-scan > rejection >
TEA by orders of magnitude.

Here: same three strategies on the four dataset analogues. The ordering
and the TEA-stays-flat property reproduce; absolute gaps compress with
the 1000× dataset scale-down (candidate sets, and hence scan/trial
counts, are proportionally smaller — see EXPERIMENTS.md).

A second series sweeps the exponential decay constant to show the
paper's Section 3.1 analysis directly: rejection cost grows as the
weight skew sharpens, TEA's does not.
"""

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, write_result
from repro.bench.report import format_series
from repro.engines import GraphWalkerEngine, KnightKingEngine, TeaEngine, Workload
from repro.walks.apps import exponential_walk

STRATEGIES = {
    "tea-hybrid": lambda g, s: TeaEngine(g, s),
    "rejection (KnightKing)": lambda g, s: KnightKingEngine(g, s, nodes=1),
    "full-scan (GraphWalker)": lambda g, s: GraphWalkerEngine(g, s),
}

_results = {name: {} for name in STRATEGIES}


@pytest.mark.parametrize("dataset", ["growth", "edit", "delicious", "twitter"])
@pytest.mark.parametrize("strategy", list(STRATEGIES))
def test_fig2_sampling_cost(benchmark, datasets, dataset, strategy):
    graph = datasets[dataset]
    spec = exponential_walk(scale=BENCH_EXP_SCALE)
    workload = Workload(walks_per_vertex=1, max_length=80)

    def run():
        engine = STRATEGIES[strategy](graph, spec)
        return engine.run(workload, seed=0, record_paths=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total_steps > 0
    cost = result.counters.edges_per_step
    benchmark.extra_info["edges_per_step"] = cost
    _results[strategy][dataset] = cost


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if all(_results[name] for name in STRATEGIES):
        text = format_series(
            _results,
            x_label="dataset",
            title=(
                "Figure 2: average sampling cost (edges evaluated per step)\n"
                "paper (twitter-scale): TEA 5.5, KnightKing 11,071, GraphWalker 19,046"
            ),
        )
        # Shape assertions: TEA cheapest on every dataset; full scan most
        # expensive (the paper's ordering).
        for dataset in _results["tea-hybrid"]:
            tea = _results["tea-hybrid"][dataset]
            rej = _results["rejection (KnightKing)"][dataset]
            scan = _results["full-scan (GraphWalker)"][dataset]
            assert tea < rej < scan * 1.05, (dataset, tea, rej, scan)
        write_result("fig2_sampling_cost", text)


def test_fig2_skew_sweep(benchmark, datasets):
    """Section 3.1: rejection cost grows with skew; TEA's stays flat."""
    graph = datasets["growth"]
    workload = Workload(walks_per_vertex=1, max_length=80, max_walks=400)
    series = {"tea-hybrid": {}, "rejection (KnightKing)": {}}

    def run():
        for scale in (50.0, 12.0, 6.0, 3.0):
            spec = exponential_walk(scale=scale)
            for name, factory in (
                ("tea-hybrid", lambda g, s: TeaEngine(g, s)),
                ("rejection (KnightKing)", lambda g, s: KnightKingEngine(g, s)),
            ):
                result = factory(graph, spec).run(workload, seed=1, record_paths=False)
                series[name][f"scale={scale:g}"] = result.counters.edges_per_step
        return series

    benchmark.pedantic(run, rounds=1, iterations=1)
    costs_rej = list(series["rejection (KnightKing)"].values())
    costs_tea = list(series["tea-hybrid"].values())
    assert costs_rej[-1] > costs_rej[0] * 1.5, "rejection must degrade with skew"
    assert max(costs_tea) < min(costs_rej), "TEA stays below rejection"
    write_result(
        "fig2_skew_sweep",
        format_series(
            series,
            x_label="exp decay",
            title="Figure 2 companion: sampling cost vs weight skew (growth)",
        ),
    )
