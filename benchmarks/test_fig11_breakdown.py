"""Figure 11 — piecewise breakdown: HPAT, then HPAT + auxiliary index.

Paper: on temporal node2vec, HPAT alone is 5.4×–1,788× faster than the
GraphWalker baseline; the auxiliary index adds a further 2.75×–3.45× by
making trunk lookup O(1) instead of O(log D).

Here: the same three configurations (baseline, HPAT without index, HPAT
with index). The index's contribution at our scale is visible in the
per-step probe counts (the O(log D) trunk-finding work it removes),
which is what the assertion checks; wall-clock deltas ride on top.
"""

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, BENCH_R, write_result
from repro.bench.report import format_series
from repro.engines import GraphWalkerEngine, TeaEngine, Workload
from repro.walks.apps import temporal_node2vec

CONFIGS = {
    "graphwalker": lambda g, s: GraphWalkerEngine(g, s),
    "hpat": lambda g, s: TeaEngine(g, s, use_aux_index=False),
    "hpat+index": lambda g, s: TeaEngine(g, s, use_aux_index=True),
}

_time = {name: {} for name in CONFIGS}
_cost = {name: {} for name in CONFIGS}


@pytest.mark.parametrize("dataset", ["growth", "edit", "delicious", "twitter"])
@pytest.mark.parametrize("config", list(CONFIGS))
def test_fig11_breakdown(benchmark, datasets, dataset, config):
    graph = datasets[dataset]
    spec = temporal_node2vec(p=0.5, q=2.0, scale=BENCH_EXP_SCALE)
    workload = Workload(walks_per_vertex=BENCH_R, max_length=80)

    def run():
        return CONFIGS[config](graph, spec).run(workload, seed=3, record_paths=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _time[config][dataset] = result.total_seconds
    _cost[config][dataset] = result.counters.edges_per_step
    benchmark.extra_info["edges_per_step"] = _cost[config][dataset]


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not all(len(_cost[c]) == 4 for c in CONFIGS):
        return
    for dataset in _cost["hpat"]:
        # The index strictly removes per-step work (Section 3.4).
        assert _cost["hpat+index"][dataset] < _cost["hpat"][dataset], dataset
        assert _cost["hpat+index"][dataset] < _cost["graphwalker"][dataset]
    text = "\n\n".join(
        [
            format_series(
                _time, x_label="dataset",
                title="Figure 11 (runtime seconds): GraphWalker vs HPAT vs HPAT+index",
            ),
            format_series(
                _cost, x_label="dataset",
                title="Figure 11 (edges evaluated per step)",
            ),
        ]
    )
    write_result("fig11_breakdown", text)
