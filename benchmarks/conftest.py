"""Shared benchmark configuration.

Every experiment writes its rendered table both to stdout (visible with
``pytest benchmarks/ --benchmark-only -s``) and to
``bench_results/<experiment>.txt`` so EXPERIMENTS.md can reference the
exact measured artifacts.

Environment knobs:

``REPRO_BENCH_SCALE``  — dataset scale multiplier (default 1.0; raise for
                         sturdier numbers, lower for a quick pass).
``REPRO_BENCH_R``      — walks per vertex for the runtime experiments
                         (default 2; the paper uses R=1 on graphs 1000×
                         larger, so a few sweeps here keep the walk phase
                         meaningful relative to preprocessing).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.benchhistory import append_record, make_record
from repro.graph.datasets import EVALUATION_DATASETS, load_dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_R = int(os.environ.get("REPRO_BENCH_R", "2"))
# The exponential decay constant used by the runtime experiments. Smaller
# values sharpen the weight skew (the regime the paper's analysis is
# about): rejection trial counts grow while TEA's hybrid sampling cost
# stays flat.
BENCH_EXP_SCALE = 6.0

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def datasets():
    """All four Table 3 analogues, generated once per session."""
    return {
        name: load_dataset(name, seed=0, scale=BENCH_SCALE)
        for name in EVALUATION_DATASETS
    }


def write_result(name: str, text: str) -> None:
    """Print an experiment table and persist it under bench_results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}")


def write_json_result(name: str, payload: dict) -> Path:
    """Persist a machine-readable experiment artifact under bench_results/.

    JSON is the normal form: ``repro bench compare`` and external
    tooling consume these, while ``write_result`` keeps the
    human-readable table alongside.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def record_history(bench: str, metrics: dict, **meta) -> None:
    """Append one normalized record to ``bench_results/history/``.

    Swallows nothing: a malformed metric dict fails the bench (loudly)
    rather than silently skipping the history append.
    """
    append_record(
        make_record(bench, metrics, meta=meta or None),
        history_dir=RESULTS_DIR / "history",
    )
