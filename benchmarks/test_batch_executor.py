"""Extension ablation — vectorised frontier executor vs scalar walk loop.

Not a paper figure: this measures the engineering choice this library
adds on top of the paper's design so a Python deployment is actually
usable at scale. Same HPAT index, same sampling distribution (equivalence
is property-tested); the only difference is advancing the whole walker
frontier per numpy pass instead of one walker step per interpreter
iteration.
"""

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, write_result
from repro.bench.report import format_series
from repro.engines import BatchTeaEngine, TeaEngine, Workload
from repro.walks.apps import exponential_walk, temporal_node2vec

_rates = {"tea-scalar (us/step)": {}, "tea-batch (us/step)": {}}
_speedup = {}


@pytest.mark.parametrize("dataset", ["growth", "edit", "delicious", "twitter"])
@pytest.mark.parametrize("engine", ["tea-scalar", "tea-batch"])
def test_batch_executor(benchmark, datasets, dataset, engine):
    graph = datasets[dataset]
    spec = temporal_node2vec(p=0.5, q=2.0, scale=BENCH_EXP_SCALE)
    workload = Workload(walks_per_vertex=4, max_length=80)
    factory = TeaEngine if engine == "tea-scalar" else BatchTeaEngine

    def run():
        return factory(graph, spec).run(workload, seed=0, record_paths=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rate = 1e6 * result.walk_seconds / max(result.total_steps, 1)
    _rates[f"{engine} (us/step)"][dataset] = rate
    benchmark.extra_info.update(us_per_step=rate, steps=result.total_steps)


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    scalar = _rates["tea-scalar (us/step)"]
    batch = _rates["tea-batch (us/step)"]
    if len(scalar) < 4 or len(batch) < 4:
        return
    for dataset in scalar:
        _speedup[dataset] = scalar[dataset] / batch[dataset]
        assert _speedup[dataset] > 3.0, (dataset, _speedup[dataset])
    text = format_series(
        {**_rates, "speedup": _speedup},
        x_label="dataset",
        title="Ablation: vectorised frontier executor vs scalar walk loop "
              "(temporal node2vec)",
    )
    write_result("batch_executor", text)
