"""Fused sampling-kernel throughput and factorized decay-bias cost.

Not a paper figure: this bench gates the kernel-fusion work itself.

* **Sampling throughput** — the fused numpy backend versus the
  preserved pre-fusion (``legacy``) kernel, drawing through
  :func:`repro.kernels.sample_batch` on a fig2-style skewed workload
  (power-law temporal graph, exponential recency weights, lane counts
  matching real frontier widths under the executor's ~75ms chunk
  target). Acceptance: >= 1.5x aggregate speedup. Both kernels burn
  identical RNG streams, so the comparison is pure compute.

* **Streaming decay-bias maintenance** — appending E edges in B
  batches under ``exponential_decay``: the BINGO-style radix forest
  (O(1) buckets touched per batch) versus the carry forest (re-indexes
  on overflow) versus a full trunk rebuild per batch (the naive
  baseline every incremental scheme must beat). Acceptance: factorized
  update strictly cheaper than the rebuild, with zero merge work.

Both series land in ``bench_results/history/kernel_fusion.jsonl`` so
``repro bench compare`` can gate regressions.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, record_history, write_json_result
from repro.core import builder
from repro.core.weights import WeightModel
from repro.graph.generators import temporal_powerlaw
from repro.graph.temporal_graph import TemporalGraph
from repro.kernels import KernelScratch, resolve_backend, sample_batch
from repro.rng import LaneRng

# Frontier widths seen in practice: the parallel executor's adaptive
# chunking (75ms target) hands the kernel batches of hundreds to a few
# thousand lanes.
LANE_COUNTS = (1000, 2000, 4000)
_fusion = {}
_decay = {}


@pytest.fixture(scope="module")
def skewed_index():
    """Fig2-style workload: power-law degrees, skewed recency weights."""
    graph = TemporalGraph.from_stream(
        temporal_powerlaw(
            num_vertices=int(2000 * BENCH_SCALE) or 200,
            num_edges=int(400000 * BENCH_SCALE) or 4000,
            alpha=1.2, time_horizon=500.0, seed=5,
        )
    )
    pre = builder.preprocess(graph, WeightModel("exponential", scale=20.0))
    return pre.index


def _best_of(fn, repeats=5):
    """Minimum wall time over ``repeats`` trials (1-core noise guard)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_kernel_fusion_throughput(benchmark, skewed_index):
    index = skewed_index
    deg = np.diff(index.indptr)
    rng = np.random.default_rng(0)
    lively = np.flatnonzero(deg >= min(64, max(2, int(deg.max() // 4))))
    legacy = resolve_backend("legacy")
    fused = resolve_backend("numpy")

    def measure():
        rows = {}
        for n in LANE_COUNTS:
            vs = lively[rng.integers(0, lively.size, size=n)].astype(np.int64)
            ss = np.maximum((deg[vs] * rng.random(n)).astype(np.int64), 1)
            lanes = np.arange(n, dtype=np.int64)
            scratch = KernelScratch()
            reps = max(5, 50000 // n)

            def burst(backend, sc):
                for _ in range(reps):
                    sample_batch(
                        backend, index, vs, ss, None,
                        draw=LaneRng(lanes.astype(np.uint64) + 7),
                        lanes=lanes, scratch=sc,
                    )

            t_leg = _best_of(lambda: burst(legacy, None)) / reps
            t_fus = _best_of(lambda: burst(fused, scratch)) / reps
            rows[n] = {"legacy_s": t_leg, "fused_s": t_fus,
                       "speedup": t_leg / t_fus}
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    _fusion.update(rows)
    benchmark.extra_info.update(
        {f"n={n}": f"{row['speedup']:.2f}x" for n, row in rows.items()}
    )
    total_legacy = sum(row["legacy_s"] for row in rows.values())
    total_fused = sum(row["fused_s"] for row in rows.values())
    aggregate = total_legacy / total_fused
    _fusion["aggregate"] = aggregate
    assert aggregate >= 1.5, (
        f"fused backend must be >=1.5x the pre-fusion kernel on the "
        f"fig2-style workload, got {aggregate:.2f}x "
        f"({ {n: round(r['speedup'], 2) for n, r in rows.items()} })"
    )


def test_factorized_decay_streaming(benchmark):
    from repro.core.incremental import VertexIncrementalHPAT
    from repro.kernels.decay import DecayRadixForest

    wm = WeightModel("exponential_decay", scale=5.0)
    # Floor the stream size: below ~40k edges the radix forest's
    # per-batch bookkeeping rivals a numpy exp+cumsum over the whole
    # (small) array and the comparison measures python overhead.
    num_edges = max(int(40000 * BENCH_SCALE), 40000)
    num_batches = 80
    rng = np.random.default_rng(23)
    times = np.sort(rng.uniform(0.0, 400.0, size=num_edges))
    dst = rng.integers(0, 512, size=num_edges).astype(np.int64)
    cuts = np.linspace(0, num_edges, num_batches + 1).astype(int)
    batches = [(dst[lo:hi], times[lo:hi])
               for lo, hi in zip(cuts[:-1], cuts[1:]) if hi > lo]

    def stream(make, append):
        state = make()
        t0 = time.perf_counter()
        for d, t in batches:
            append(state, d, t)
        return state, time.perf_counter() - t0

    def rebuild_append(state, d, t):
        # Full trunk rebuild per batch: recompute every weight and its
        # prefix sums from scratch — the cost incremental schemes avoid.
        state["dst"] = np.concatenate([state["dst"], d])
        state["times"] = np.concatenate([state["times"], t])
        w = np.exp((state["times"][-1] - state["times"]) / wm.scale)
        state["cum"] = np.concatenate([[0.0], np.cumsum(w)])

    def measure():
        radix, radix_s = stream(lambda: DecayRadixForest(wm),
                                lambda f, d, t: f.append_batch(d, t))
        carry, carry_s = stream(lambda: VertexIncrementalHPAT(wm),
                                lambda f, d, t: f.append_batch(d, t))
        _, rebuild_s = stream(
            lambda: {"dst": np.zeros(0, np.int64),
                     "times": np.zeros(0, np.float64)},
            rebuild_append,
        )
        return {
            "radix_s": radix_s, "carry_s": carry_s, "rebuild_s": rebuild_s,
            "radix_merged": radix.merged_edges,
            "carry_merged": carry.merged_edges,
            "radix_buckets_touched": radix.buckets_touched,
            "radix_blocks": radix.num_blocks(),
        }

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    _decay.update(stats)
    _decay["num_edges"] = num_edges
    _decay["num_batches"] = num_batches
    benchmark.extra_info.update({
        "radix_vs_rebuild": f"{stats['rebuild_s'] / stats['radix_s']:.1f}x",
        "buckets_touched": stats["radix_buckets_touched"],
    })
    # The factorized update must beat rebuilding trunks outright, with
    # zero merge work (the O(1)-buckets-per-batch claim: touched bucket
    # count is bounded by batches + covered octave range, not edges).
    assert stats["radix_s"] < stats["rebuild_s"], (
        f"factorized append ({stats['radix_s']:.3f}s) must be strictly "
        f"below per-batch trunk rebuild ({stats['rebuild_s']:.3f}s)"
    )
    assert stats["radix_merged"] == 0
    assert stats["carry_merged"] > 0
    assert stats["radix_buckets_touched"] <= num_batches + stats["radix_blocks"]


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if "aggregate" not in _fusion or "radix_s" not in _decay:
        return
    payload = {
        "sampling": {str(n): _fusion[n] for n in LANE_COUNTS},
        "aggregate_speedup": _fusion["aggregate"],
        "decay_streaming": dict(_decay),
    }
    print(
        f"\n===== kernel_fusion =====\n"
        f"fused vs legacy: {_fusion['aggregate']:.2f}x aggregate "
        f"({ {n: round(_fusion[n]['speedup'], 2) for n in LANE_COUNTS} })\n"
        f"decay stream: radix {_decay['radix_s']:.3f}s, carry "
        f"{_decay['carry_s']:.3f}s, rebuild {_decay['rebuild_s']:.3f}s"
    )
    write_json_result("kernel_fusion", payload)
    metrics = {"fused_speedup": _fusion["aggregate"],
               "decay_radix_s": _decay["radix_s"],
               "decay_carry_s": _decay["carry_s"],
               "decay_rebuild_s": _decay["rebuild_s"]}
    for n in LANE_COUNTS:
        metrics[f"speedup_n{n}"] = _fusion[n]["speedup"]
    record_history(
        "kernel_fusion", metrics,
        backend=resolve_backend("numpy").name,
        lane_counts=list(LANE_COUNTS),
        decay_edges=_decay["num_edges"],
        decay_batches=_decay["num_batches"],
        buckets_touched=_decay["radix_buckets_touched"],
    )
