"""Extension ablation — GNN neighborhood sampling throughput (§4.4).

The paper predicts TGNN training sampling "could benefit enormously"
from TEA. This bench measures a TGN-style 2-hop block-sampling workload
(recency-biased, no future peeking) served by the HPAT kernel against a
reference per-query scan sampler, across the dataset analogues.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.bench.report import format_series
from repro.gnn import TemporalNeighborSampler
from repro.rng import make_rng

RECENCY_SCALE = 20.0
FANOUTS = [10, 5]
BATCH = 512

_tea_ms = {}
_naive_ms = {}


def _naive_block(graph, nodes, times, k, rng):
    total = 0
    for v, t in zip(nodes, times):
        nbrs, etimes = graph.neighbors(int(v))
        past = etimes < t
        cand = nbrs[past]
        if cand.size == 0:
            continue
        w = np.exp((etimes[past] - etimes[past].max()) / RECENCY_SCALE)
        rng.choice(cand, size=k, p=w / w.sum())
        total += k
    return total


@pytest.mark.parametrize("dataset", ["growth", "edit", "delicious", "twitter"])
def test_gnn_sampling_throughput(benchmark, datasets, dataset):
    graph = datasets[dataset]
    stream = graph.to_stream()
    mid = len(stream) // 2
    nodes = stream.src[mid : mid + BATCH]
    times = stream.time[mid : mid + BATCH]

    sampler = TemporalNeighborSampler(graph, recency_scale=RECENCY_SCALE, seed=0)

    def run():
        t0 = time.perf_counter()
        blocks = sampler.sample_blocks(nodes, times, FANOUTS)
        tea = time.perf_counter() - t0
        rng = make_rng(1)
        t0 = time.perf_counter()
        _naive_block(graph, nodes, times, FANOUTS[0], rng)
        naive = time.perf_counter() - t0
        return tea, naive, blocks

    tea_s, naive_s, blocks = benchmark.pedantic(run, rounds=1, iterations=1)
    # No-future-peeking is non-negotiable.
    for block in blocks:
        seed_rep = np.repeat(block.seed_times, block.fanout).reshape(block.times.shape)
        assert np.all(block.times[block.mask] < seed_rep[block.mask])
    _tea_ms[dataset] = tea_s * 1e3
    _naive_ms[dataset] = naive_s * 1e3
    benchmark.extra_info.update(tea_ms=_tea_ms[dataset], naive_ms=_naive_ms[dataset])


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if len(_tea_ms) < 4:
        return
    speedup = {d: _naive_ms[d] / _tea_ms[d] for d in _tea_ms}
    # TEA must win on every dataset; note the naive baseline only does
    # 1 hop while TEA does 2, so the real gap is larger than reported.
    for d, s in speedup.items():
        assert s > 1.0, (d, s)
    write_result(
        "gnn_sampling",
        format_series(
            {"tea 2-hop (ms)": _tea_ms, "naive 1-hop (ms)": _naive_ms,
             "speedup (>=)": speedup},
            x_label="dataset",
            title=(
                "Extension (§4.4): TGN-style neighborhood sampling, "
                f"batch={BATCH}, fanouts={FANOUTS}, recency exp({RECENCY_SCALE:g})"
            ),
        ),
    )
