"""Figure 13a/b/c/e — preprocessing phases and their thread scaling.

Paper: all three preprocessing phases (candidate-set search, HPAT
construction, auxiliary-index generation) are embarrassingly parallel;
16 threads give ≈12.8× on a 16-core box, HPAT construction is ~80% of
preprocessing and index generation ~5%.

Here: the same three phases, timed per dataset at 1 worker and at
``min(16, cpu)`` workers (process backend — real data parallelism over
precomputed disjoint output ranges, like the paper's lock-free scheme).
The reproduced shape is the *phase breakdown* (HPAT construction
dominates, index generation is a trailing few percent); scaling factors
are asserted only when the machine actually has multiple cores — on a
single-core box the sweep measures pure coordination overhead and is
reported as such (see EXPERIMENTS.md).
"""

import os

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, write_result
from repro.bench.report import format_series
from repro.core.builder import preprocess
from repro.core.weights import WeightModel

CPUS = os.cpu_count() or 1
MAX_WORKERS = max(2, min(16, CPUS))

_phases = {}


@pytest.mark.parametrize("dataset", ["growth", "edit", "delicious", "twitter"])
@pytest.mark.parametrize("workers", [1, MAX_WORKERS])
def test_fig13_phases(benchmark, datasets, dataset, workers):
    graph = datasets[dataset]
    model = WeightModel("exponential", scale=BENCH_EXP_SCALE)

    def run():
        return preprocess(graph, model, workers=workers)

    pre = benchmark.pedantic(run, rounds=1, iterations=1)
    snap = pre.report.snapshot()
    _phases[(dataset, workers)] = snap
    benchmark.extra_info.update(snap)
    # Figure 13's structural claims: HPAT construction dominates, the
    # auxiliary index is a small trailing phase.
    assert snap["index_build_s"] > snap["aux_index_s"]
    assert snap["index_build_s"] >= 0.3 * snap["total_s"]


def test_fig13e_thread_sweep(benchmark, datasets):
    """Preprocessing time vs worker count on the largest dataset.

    The paper measures 12.8× from 1→16 threads on a 16-core machine.
    Scaling is asserted only when cores are available; a single-core run
    still exercises the parallel code path and records the overhead.
    """
    graph = datasets["twitter"]
    model = WeightModel("exponential", scale=BENCH_EXP_SCALE)
    sweep = {}

    def run():
        for workers in sorted({1, 2, 4, 8, MAX_WORKERS}):
            pre = preprocess(graph, model, workers=workers, backend="process")
            sweep[workers] = pre.report.total_seconds
        return sweep

    benchmark.pedantic(run, rounds=1, iterations=1)
    if CPUS >= 4:
        best = min(w for w in sweep if w > 1 and sweep[w] == min(
            v for k, v in sweep.items() if k > 1))
        assert sweep[best] < sweep[1], "multi-core run must beat serial"
    text = format_series(
        {"preprocess_s": {str(k): v for k, v in sweep.items()}},
        x_label="workers",
        title=(
            f"Figure 13e: preprocessing time vs workers "
            f"(twitter analogue, machine has {CPUS} core(s); "
            f"paper: 12.8x at 16 threads on 16 cores)"
        ),
    )
    write_result("fig13e_thread_sweep", text)


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not _phases:
        return
    series = {}
    for (dataset, workers), snap in sorted(_phases.items()):
        label = f"{dataset}@{workers}w"
        series[label] = {
            "candidate_search": snap["candidate_search_s"],
            "hpat_build": snap["index_build_s"],
            "aux_index": snap["aux_index_s"],
            "total": snap["total_s"],
        }
    text = format_series(
        series,
        x_label="phase",
        title="Figure 13a-c: preprocessing phase seconds (dataset@workers)",
    )
    write_result("fig13_construction", text)
