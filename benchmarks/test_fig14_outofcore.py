"""Figure 14 — out-of-core execution: runtime and disk I/O.

Paper (temporal node2vec, index on disk): TEA is 115×–1,172× faster than
GraphWalker out-of-core, and its I/O time is 130×–1,108× lower, because
a TEA step reads O(trunkSize) bytes (one trunk) while GraphWalker loads
the vertex's whole O(D) neighbor list to rebuild the distribution.

Here: both engines against real disk-backed stores with exact I/O
accounting. The asserted shape is the I/O asymmetry — bytes per step
O(trunkSize) vs O(D) — which is the paper's causal mechanism ("disk I/O
takes the majority of runtime ... this explains the trend matching");
wall-clock at laptop scale is page-cache-bound and reported, not
asserted.
"""

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, BENCH_R, write_result
from repro.bench.report import format_series
from repro.engines import GraphWalkerEngine, TeaOutOfCoreEngine, Workload
from repro.walks.apps import temporal_node2vec

TRUNK_SIZE = 10  # the paper's choice for twitter under 16 GB

_io_bytes = {"tea-ooc": {}, "graphwalker-ooc": {}}
_runtime = {"tea-ooc": {}, "graphwalker-ooc": {}}
_steps = {}


@pytest.mark.parametrize("dataset", ["growth", "edit", "delicious", "twitter"])
@pytest.mark.parametrize("engine", ["tea-ooc", "graphwalker-ooc"])
def test_fig14_outofcore(benchmark, datasets, tmp_path, dataset, engine):
    graph = datasets[dataset]
    spec = temporal_node2vec(p=0.5, q=2.0, scale=BENCH_EXP_SCALE)
    workload = Workload(walks_per_vertex=BENCH_R, max_length=80)

    def run():
        if engine == "tea-ooc":
            e = TeaOutOfCoreEngine(
                graph, spec, trunk_size=TRUNK_SIZE, storage_dir=str(tmp_path / "tea")
            )
        else:
            e = GraphWalkerEngine(
                graph, spec, out_of_core=True, storage_dir=str(tmp_path / "gw")
            )
        return e.run(workload, seed=5, record_paths=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _io_bytes[engine][dataset] = result.counters.io_bytes
    _runtime[engine][dataset] = result.total_seconds
    _steps[(engine, dataset)] = result.total_steps
    benchmark.extra_info.update(
        io_bytes=result.counters.io_bytes, io_blocks=result.counters.io_blocks
    )


def test_fig14_reentry_cache_ablation(benchmark, datasets, tmp_path):
    """§4.1's re-entry optimisation: cached loads cut I/O volume.

    The paper reuses prior loaded data to minimise disk I/O; this
    ablation runs the same workload with the trunk cache off and on and
    reports the I/O saved (walk mass concentrates on hub trunks, so the
    hit rate is high on power-law graphs).
    """
    graph = datasets["growth"]
    spec = temporal_node2vec(p=0.5, q=2.0, scale=BENCH_EXP_SCALE)
    workload = Workload(walks_per_vertex=BENCH_R, max_length=80)
    out = {}

    def run():
        for label, cache_bytes in (("no-cache", 0), ("cache-4MiB", 4 << 20)):
            engine = TeaOutOfCoreEngine(
                graph, spec, trunk_size=TRUNK_SIZE,
                storage_dir=str(tmp_path / label), cache_bytes=cache_bytes,
            )
            result = engine.run(workload, seed=6, record_paths=False)
            out[label] = (result.counters.io_bytes,
                          engine.cache_stats.hit_rate if cache_bytes else 0.0)
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert out["cache-4MiB"][0] < out["no-cache"][0]
    assert out["cache-4MiB"][1] > 0.2
    from repro.bench.report import format_series

    write_result(
        "fig14_reentry_cache",
        format_series(
            {
                "io_bytes": {k: float(v[0]) for k, v in out.items()},
                "hit_rate": {k: v[1] for k, v in out.items()},
            },
            x_label="config",
            title="Figure 14 companion: §4.1 re-entry cache ablation (growth)",
        ),
    )


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not all(len(v) == 4 for v in _io_bytes.values()):
        return
    ratios = {}
    for dataset in _io_bytes["tea-ooc"]:
        tea_per_step = _io_bytes["tea-ooc"][dataset] / _steps[("tea-ooc", dataset)]
        gw_per_step = _io_bytes["graphwalker-ooc"][dataset] / _steps[
            ("graphwalker-ooc", dataset)
        ]
        ratios[dataset] = gw_per_step / tea_per_step
        # TEA reads O(trunkSize) bytes/step; GraphWalker O(D). The gap
        # must be large and must grow with mean degree (paper: up to
        # 1,108x at full scale).
        assert ratios[dataset] > 3.0, (dataset, ratios[dataset])
    assert ratios["twitter"] > ratios["growth"], "I/O gap grows with density"
    text = "\n\n".join(
        [
            format_series(
                {k: {d: v / 1024**2 for d, v in s.items()} for k, s in _io_bytes.items()},
                x_label="dataset",
                title="Figure 14b: disk I/O volume (MiB)",
            ),
            format_series(
                _runtime, x_label="dataset",
                title="Figure 14a: out-of-core runtime (seconds)",
            ),
            format_series(
                {"gw_bytes_per_step / tea_bytes_per_step": ratios},
                x_label="dataset",
                title="per-step I/O asymmetry (paper mechanism: O(D) vs O(trunkSize))",
            ),
        ]
    )
    write_result("fig14_outofcore", text)
