"""Figure 9 — memory usage of TEA (HPAT) vs GraphWalker vs KnightKing.

Paper: TEA's HPAT costs the most memory (78 GB on twitter, vs 36.5 GB
GraphWalker and 45 GB single-node KnightKing), with the HPAT index at
82.5%–91.2% of TEA's footprint — the deliberate space-for-speed trade.

Here: exact byte accounting of every structure each engine holds, same
three engines, same ordering assertions (TEA largest, index-dominated).
"""

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, write_result
from repro.bench.report import format_series
from repro.engines import GraphWalkerEngine, KnightKingEngine, TeaEngine
from repro.walks.apps import temporal_node2vec

ENGINES = {
    "tea (HPAT)": lambda g, s: TeaEngine(g, s),
    "graphwalker": lambda g, s: GraphWalkerEngine(g, s),
    "knightking": lambda g, s: KnightKingEngine(g, s),
}

_memory = {name: {} for name in ENGINES}
_index_fraction = {}


@pytest.mark.parametrize("dataset", ["growth", "edit", "delicious", "twitter"])
def test_fig9_memory(benchmark, datasets, dataset):
    graph = datasets[dataset]
    spec = temporal_node2vec(scale=BENCH_EXP_SCALE)

    def run():
        reports = {}
        for name, factory in ENGINES.items():
            engine = factory(graph, spec)
            engine.prepare()
            reports[name] = engine.memory_report()
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, report in reports.items():
        _memory[name][dataset] = report.total / 1024**2  # MiB
    tea_report = reports["tea (HPAT)"]
    index_bytes = sum(
        v for k, v in tea_report.components.items() if k.startswith("index_")
    )
    _index_fraction[dataset] = index_bytes / tea_report.total
    benchmark.extra_info["tea_mib"] = _memory["tea (HPAT)"][dataset]

    # Paper shape: TEA holds the most memory; its index dominates.
    assert reports["tea (HPAT)"].total > reports["graphwalker"].total
    assert reports["tea (HPAT)"].total > reports["knightking"].total
    assert _index_fraction[dataset] > 0.5


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not all(_memory[n] for n in ENGINES):
        return
    text = format_series(
        _memory,
        x_label="dataset",
        title=(
            "Figure 9: memory usage (MiB) — paper shape: TEA largest "
            "(index-dominated), baselines smaller"
        ),
    )
    fractions = "\n".join(
        f"  {d}: HPAT index = {f:.1%} of TEA memory (paper: 82.5%-91.2%)"
        for d, f in sorted(_index_fraction.items())
    )
    write_result("fig9_memory", text + "\n" + fractions)
