"""Figure 13d — incremental HPAT update vs rebuild from scratch.

Paper: appending a batch to a vertex whose degree far exceeds the batch
is enormously cheaper incrementally (8,975× at degree 10⁶ / batch 100;
79.3× at batch 10,000); when degree ≲ batch the two converge (speedup
→ 1 at degree 1, ≈1.8× at degree == batch).

Here: same grid shape — batch sizes {100, 10,000} × vertex degrees
{1, 100, 10k, 100k} (10⁶ is out of reach for a per-cell pure-Python
rebuild; 10⁵ already shows the regime). The asserted shape: speedup
grows monotonically with degree/batch and is large in the paper's
"degree ≫ batch" regime.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.bench.report import format_series
from repro.core.incremental import VertexIncrementalHPAT
from repro.core.weights import WeightModel

DEGREES = [1, 100, 10_000, 100_000]
BATCHES = [100, 10_000]

_speedups = {f"batch={b}": {} for b in BATCHES}


def _timed_update(degree: int, batch: int):
    rng = np.random.default_rng(degree + batch)
    model = WeightModel("exponential", scale=1000.0)
    base_times = np.sort(rng.uniform(0.0, 1000.0, degree))
    new_times = np.sort(rng.uniform(1000.0, 1001.0, batch))

    vert = VertexIncrementalHPAT(model)
    if degree:
        vert.append_batch(np.arange(degree), base_times)
    t0 = time.perf_counter()
    vert.append_batch(np.arange(batch), new_times)
    incremental_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    rebuilt = VertexIncrementalHPAT(model)
    rebuilt.append_batch(
        np.arange(degree + batch), np.concatenate([base_times, new_times])
    )
    rebuild_s = time.perf_counter() - t0
    return incremental_s, rebuild_s


@pytest.mark.parametrize("batch", BATCHES)
@pytest.mark.parametrize("degree", DEGREES)
def test_fig13d_incremental_update(benchmark, degree, batch):
    result = benchmark.pedantic(
        _timed_update, args=(degree, batch), rounds=1, iterations=1
    )
    incremental_s, rebuild_s = result
    speedup = rebuild_s / max(incremental_s, 1e-9)
    _speedups[f"batch={batch}"][f"deg={degree}"] = speedup
    benchmark.extra_info.update(
        incremental_s=incremental_s, rebuild_s=rebuild_s, speedup=speedup
    )
    if degree >= 100 * batch:
        # Paper's headline regime: degree ≫ batch ⇒ large speedup.
        assert speedup > 10, (degree, batch, speedup)
    if degree <= batch // 10:
        # Degenerate regime: rebuild ≈ incremental (speedup near 1).
        assert speedup < 5, (degree, batch, speedup)


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if not all(len(v) == len(DEGREES) for v in _speedups.values()):
        return
    text = format_series(
        _speedups,
        x_label="vertex degree",
        title=(
            "Figure 13d: incremental HPAT update speedup over rebuild\n"
            "paper: 8,975x at degree 1e6/batch 100; ~1x when degree <= batch"
        ),
    )
    for label, series in _speedups.items():
        values = [series[f"deg={d}"] for d in DEGREES]
        assert values[-1] > values[0], f"{label}: speedup must grow with degree"
    write_result("fig13d_incremental", text)
