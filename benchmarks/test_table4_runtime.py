"""Table 4 — runtime of linear / exponential / node2vec on all datasets.

Paper: TEA beats GraphWalker by 26×–6,158× and (8-node) KnightKing by
4.3×–954×, with the advantage growing with dataset size and with weight
dynamism (linear < exponential < node2vec).

Here: same 4 datasets × 3 applications × 3 engines grid. Wall-clock
ratios compress heavily at 1/1000 dataset scale under a Python
interpreter (every engine pays the same ~10 µs/step floor; the paper's
gaps come from 10³–10⁴-edge scans that our scaled candidate sets don't
reach), so alongside total seconds this experiment reports the per-step
sampling cost, whose ordering (TEA < rejection < full-scan, gap growing
with dataset) is asserted as the reproduced shape. See EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, BENCH_R, write_result
from repro.bench.report import format_rows
from repro.bench.runner import ExperimentRow
from repro.engines import (
    BatchTeaEngine,
    GraphWalkerEngine,
    KnightKingEngine,
    TeaEngine,
    Workload,
)
from repro.walks.apps import exponential_walk, linear_walk, temporal_node2vec

DATASET_NAMES = ["growth", "edit", "delicious", "twitter"]

APPS = {
    "linear": lambda: linear_walk(),
    "exponential": lambda: exponential_walk(scale=BENCH_EXP_SCALE),
    "node2vec": lambda: temporal_node2vec(p=0.5, q=2.0, scale=BENCH_EXP_SCALE),
}

ENGINES = {
    "graphwalker": lambda g, s: GraphWalkerEngine(g, s),
    "knightking-8node": lambda g, s: KnightKingEngine(g, s, nodes=8),
    "tea": lambda g, s: TeaEngine(g, s),
    # The vectorised executor removes the interpreter floor from TEA's
    # walk phase, recovering the paper's wall-clock ordering too.
    "tea-batch": lambda g, s: BatchTeaEngine(g, s),
}

_rows = []


@pytest.mark.parametrize("dataset", DATASET_NAMES)
@pytest.mark.parametrize("app", list(APPS))
@pytest.mark.parametrize("engine", list(ENGINES))
def test_table4_cell(benchmark, datasets, dataset, app, engine):
    graph = datasets[dataset]
    spec = APPS[app]()
    # Table 4 runs a heavier workload than the other figures (8x the
    # base R): the paper's regime has walk work >> preprocessing (41M
    # walks amortise one index build), and at tiny R the comparison
    # degenerates into a preprocessing micro-benchmark.
    workload = Workload(walks_per_vertex=8 * BENCH_R, max_length=80)

    def run():
        return ENGINES[engine](graph, spec).run(workload, seed=0, record_paths=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total_steps > 0
    row = ExperimentRow.from_result(dataset, result)
    row.engine = engine
    row.app = app
    benchmark.extra_info.update(
        total_s=result.total_seconds, edges_per_step=row.edges_per_step
    )
    _rows.append(row)


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if len(_rows) < len(DATASET_NAMES) * len(APPS) * len(ENGINES):
        return
    lines = [
        "Table 4: runtime (seconds) and per-step sampling cost",
        f"workload: R={8 * BENCH_R}, L=80 over every vertex",
        "",
        format_rows(
            _rows,
            columns=(
                "dataset", "app", "engine", "prepare_seconds",
                "walk_seconds", "total_seconds", "edges_per_step",
            ),
        ),
        "",
        "speedups of TEA (cost model edges/step, and total seconds):",
    ]
    by_key = {(r.dataset, r.app, r.engine): r for r in _rows}
    for dataset in DATASET_NAMES:
        for app in APPS:
            tea = by_key[(dataset, app, "tea")]
            batch = by_key[(dataset, app, "tea-batch")]
            for other in ("graphwalker", "knightking-8node"):
                row = by_key[(dataset, app, other)]
                model = row.edges_per_step / tea.edges_per_step
                wall = row.total_seconds / tea.total_seconds
                wall_batch = row.total_seconds / batch.total_seconds
                lines.append(
                    f"  {dataset:10s} {app:12s} vs {other:17s} "
                    f"cost-model {model:7.1f}x   wall {wall:6.2f}x   "
                    f"wall(batch) {wall_batch:6.2f}x"
                )
                # Reproduced shape: TEA's sampling cost is lowest on the
                # dynamic-weight applications everywhere.
                if app in ("exponential", "node2vec"):
                    assert model > 1.0, (dataset, app, other)
            # Vectorised TEA's walk phase must outrun the scalar one.
            assert batch.walk_seconds < tea.walk_seconds
    write_result("table4_runtime", "\n".join(lines))
