"""Figure 12 — HPAT vs PAT vs ITS vs full alias method (runtime & memory).

Paper (temporal node2vec): the alias method is fastest only on the
smallest dataset (1.38× over HPAT at 51.7× the memory) and OOMs on every
other dataset; HPAT is otherwise fastest, PAT second (1.43×–2.97× behind
HPAT), ITS last (PAT 1.22×–1.89× over ITS). Memory: ITS ≈ PAT < HPAT
(≈1.95× PAT) ≪ alias.

Here: identical four configurations via ``TeaEngine(structure=...)``.
The alias structure is given a memory budget scaled like the paper's
94 GB machine (÷1000 data scale ⇒ we grant 1 GiB): growth fits, the
other three raise the simulated OOM that Figure 12 reports.
"""

import math

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, BENCH_R, write_result
from repro.bench.report import format_series
from repro.bench.runner import ExperimentRow, run_engines
from repro.engines import TeaEngine, Workload
from repro.walks.apps import temporal_node2vec

ALIAS_BUDGET = 1 << 30  # 1 GiB — the paper's 94 GB scaled by ~1/100

STRUCTURES = {
    "alias": lambda g, s: TeaEngine(g, s, structure="alias",
                                    alias_budget_bytes=ALIAS_BUDGET),
    "hpat": lambda g, s: TeaEngine(g, s, structure="hpat"),
    "pat": lambda g, s: TeaEngine(g, s, structure="pat"),
    "its": lambda g, s: TeaEngine(g, s, structure="its"),
}

_rows = []


@pytest.mark.parametrize("dataset", ["growth", "edit", "delicious", "twitter"])
def test_fig12_sampling_methods(benchmark, datasets, dataset):
    graph = datasets[dataset]
    spec = temporal_node2vec(p=0.5, q=2.0, scale=BENCH_EXP_SCALE)
    workload = Workload(walks_per_vertex=BENCH_R, max_length=80)

    def run():
        return run_engines(graph, spec, STRUCTURES, workload, seed=4,
                           dataset=dataset)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows.extend(rows)
    by_engine = {r.engine: r for r in rows}

    # Paper shape: alias OOMs everywhere but the smallest dataset.
    if dataset == "growth":
        assert not by_engine["alias"].oom
        # The alias method's per-draw cost is the floor.
        assert by_engine["alias"].edges_per_step <= by_engine["hpat"].edges_per_step
    else:
        assert by_engine["alias"].oom, dataset
    # Sampling-cost ordering: HPAT < PAT < ITS per step.
    assert (
        by_engine["hpat"].edges_per_step
        < by_engine["pat"].edges_per_step
        < by_engine["its"].edges_per_step
    ), dataset
    # Memory ordering: ITS <= PAT < HPAT (paper: HPAT ≈ 1.95× PAT).
    assert by_engine["its"].memory_bytes <= by_engine["pat"].memory_bytes
    assert by_engine["pat"].memory_bytes < by_engine["hpat"].memory_bytes
    if not by_engine["alias"].oom:
        assert by_engine["alias"].memory_bytes > by_engine["hpat"].memory_bytes


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if len(_rows) < 16:
        return
    runtime = {name: {} for name in STRUCTURES}
    memory = {name: {} for name in STRUCTURES}
    for row in _rows:
        runtime[row.engine][row.dataset] = (
            float("nan") if row.oom else row.total_seconds
        )
        memory[row.engine][row.dataset] = (
            float("nan") if row.oom else row.memory_bytes / 1024**2
        )
    text = "\n\n".join(
        [
            format_series(runtime, x_label="dataset",
                          title="Figure 12a: runtime (seconds; OOM = over budget)"),
            format_series(memory, x_label="dataset",
                          title="Figure 12b: memory (MiB)"),
        ]
    )
    write_result("fig12_sampling_methods", text)
