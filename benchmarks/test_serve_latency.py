"""Serving latency/throughput: request batching on versus off.

Not a paper figure: this bench gates the `repro serve` batching work.
Boots two real daemons (loopback HTTP, identical graph and engine) and
pushes the SAME request volume from concurrent client threads:

* **batching off** — the batcher degrades to one-request batches: each
  query pays its own frontier run, serialised through the single
  executor thread (the honest no-coalescing baseline, not a different
  code path);
* **batching on** — concurrent compatible queries coalesce into shared
  lane-seeded frontier runs (ThunderRW-style interleaving at the
  serving layer).

Per-request wall latencies are measured client-side; p50/p99 and QPS
for both arms land in ``bench_results/history/serve_latency.jsonl`` via
:mod:`repro.benchhistory`, so ``repro bench compare`` gates
regressions. Acceptance (ISSUE 9): batching-on sustains >= 2x the QPS
of batching-off at equal volume.
"""

import sys
import threading
import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, record_history, write_json_result
from repro.graph.generators import temporal_powerlaw
from repro.graph.temporal_graph import TemporalGraph
from repro.serve import ServeClient, WalkService

CLIENT_THREADS = 12
REQUESTS_PER_THREAD = 12
TOTAL = CLIENT_THREADS * REQUESTS_PER_THREAD

#: Mid-size queries (128 walks each): per-STEP kernel overhead dominates
#: at this width and amortises across coalesced lanes, which is exactly
#: the serving regime batching exists for (many users, modest queries).
QUERY = dict(
    walks_per_vertex=4,
    max_length=16,
    app="unbiased",
    record_paths=False,  # measure serving, not JSON rendering
)
STARTS_PER_REQUEST = 32

_results = {}


@pytest.fixture(scope="module", autouse=True)
def fast_thread_switching():
    """Both arms pay two thread handoffs per request (handler ->
    batcher -> handler); at the default 5 ms GIL switch interval that
    handoff noise swamps the execution costs the bench compares."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    yield
    sys.setswitchinterval(previous)


@pytest.fixture(scope="module")
def serve_graph():
    # Dense-in-time graph so walks survive many hops (the per-step
    # frontier loop is where batching amortises).
    return TemporalGraph.from_stream(
        temporal_powerlaw(
            num_vertices=int(500 * BENCH_SCALE) or 100,
            num_edges=int(200000 * BENCH_SCALE) or 20000,
            alpha=0.6, time_horizon=20000.0, seed=17,
        )
    )


def _drive(service):
    """Push TOTAL requests from CLIENT_THREADS threads; returns
    (per-request latencies in seconds, total wall seconds)."""
    client = ServeClient(port=service.port, timeout=120.0)
    # Warm the engine cache so both arms measure serving, not prepare().
    client.walk(starts=[1], seed=0, max_length=4, record_paths=False)
    latencies = []
    lock = threading.Lock()

    def _worker(worker_id):
        mine = []
        for i in range(REQUESTS_PER_THREAD):
            base = worker_id * 31 + i * 7
            starts = [1 + (base + 3 * k) % 400 for k in range(STARTS_PER_REQUEST)]
            t0 = time.perf_counter()
            client.walk(starts=starts, seed=worker_id * 1000 + i, **QUERY)
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=_worker, args=(w,))
               for w in range(CLIENT_THREADS)]
    wall_t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_t0
    assert len(latencies) == TOTAL
    return np.asarray(latencies), wall


def _arm(graph, batching):
    with WalkService(
        graph,
        engine="tea-batch",
        batching=batching,
        batch_window_ms=4.0,
        # One batch per convoy: with closed-loop clients at most
        # CLIENT_THREADS requests are ever in flight, so this cap lets
        # the linger short-circuit the moment all of them have parked.
        max_batch=CLIENT_THREADS,
        queue_depth=TOTAL + CLIENT_THREADS,
        request_timeout=120.0,
    ) as service:
        # Best-of-2: the ratio under test is a property of the serving
        # architecture, not of whatever else the host is running.
        best = None
        for _ in range(2):
            latencies, wall = _drive(service)
            if best is None or wall < best[1]:
                best = (latencies, wall)
        latencies, wall = best
        counters = ServeClient(port=service.port).stats()["counters"]
    assert counters["rejected"] == 0, "bench must not trip admission control"
    assert counters["failed"] == 0
    return {
        "qps": TOTAL / wall,
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "mean_ms": float(latencies.mean() * 1e3),
        "wall_s": wall,
        "batches": counters["batches"],
        "coalesced": counters["coalesced"],
    }


@pytest.mark.benchmark
def test_serve_latency_batching_speedup(serve_graph):
    solo = _arm(serve_graph, batching=False)
    batched = _arm(serve_graph, batching=True)
    speedup = batched["qps"] / solo["qps"]
    _results.update(solo=solo, batched=batched, speedup=speedup)

    assert batched["coalesced"] > 0, "batching arm never coalesced"
    assert speedup >= 2.0, (
        f"batching-on QPS {batched['qps']:.0f} is only {speedup:.2f}x "
        f"batching-off QPS {solo['qps']:.0f} (need >= 2x)"
    )


@pytest.mark.benchmark
def test_record_serve_latency_history():
    assert _results, "speedup bench must run first"
    solo, batched = _results["solo"], _results["batched"]
    payload = {
        "total_requests": TOTAL,
        "client_threads": CLIENT_THREADS,
        "solo": solo,
        "batched": batched,
        "batching_speedup": _results["speedup"],
    }
    write_json_result("serve_latency", payload)
    record_history(
        "serve_latency",
        {
            "queries_per_sec_batched": round(batched["qps"], 1),
            "queries_per_sec_solo": round(solo["qps"], 1),
            "latency_p50_ms_batched": round(batched["p50_ms"], 3),
            "latency_p99_ms_batched": round(batched["p99_ms"], 3),
            "latency_p50_ms_solo": round(solo["p50_ms"], 3),
            "latency_p99_ms_solo": round(solo["p99_ms"], 3),
            "batching_speedup": round(_results["speedup"], 2),
        },
        engine="tea-batch",
        client_threads=CLIENT_THREADS,
        total_requests=TOTAL,
        bench_scale=BENCH_SCALE,
    )
    print(
        f"\nserve_latency: solo {solo['qps']:.0f} qps "
        f"(p50 {solo['p50_ms']:.2f}ms p99 {solo['p99_ms']:.2f}ms) | "
        f"batched {batched['qps']:.0f} qps "
        f"(p50 {batched['p50_ms']:.2f}ms p99 {batched['p99_ms']:.2f}ms) | "
        f"{_results['speedup']:.2f}x"
    )
