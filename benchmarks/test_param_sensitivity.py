"""Section 5.2 "Parameters Sensitivity" — walk count R and length L.

Paper: runtime at R=2 is 1.91×–2.14× that of R=1 (work is linear in the
number of walks); L=80 takes 4.7×–5.9× longer than L=10.

Here: the same two sweeps on the growth analogue. R-scaling reproduces
directly (walks are independent). L-scaling saturates earlier because
scaled-down candidate sets exhaust sooner — the measured ratio is
reported against the paper's band (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import BENCH_EXP_SCALE, write_result
from repro.bench.report import format_series
from repro.engines import TeaEngine, Workload
from repro.walks.apps import temporal_node2vec

_r_walk_seconds = {}
_r_steps = {}
_l_steps = {}


@pytest.mark.parametrize("r", [1, 2, 3])
def test_param_r_scaling(benchmark, datasets, r):
    graph = datasets["growth"]
    spec = temporal_node2vec(p=0.5, q=2.0, scale=BENCH_EXP_SCALE)
    engine = TeaEngine(graph, spec)
    engine.prepare()

    def run():
        return engine.run(Workload(walks_per_vertex=r, max_length=80), seed=6,
                          record_paths=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _r_walk_seconds[r] = result.walk_seconds
    _r_steps[r] = result.total_steps
    benchmark.extra_info["steps"] = result.total_steps


@pytest.mark.parametrize("length", [1, 2, 4, 8, 80])
def test_param_l_scaling(benchmark, datasets, length):
    graph = datasets["growth"]
    spec = temporal_node2vec(p=0.5, q=2.0, scale=BENCH_EXP_SCALE)
    engine = TeaEngine(graph, spec)
    engine.prepare()

    def run():
        return engine.run(
            Workload(walks_per_vertex=4, max_length=length), seed=6,
            record_paths=False,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _l_steps[length] = result.total_steps


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    if len(_r_walk_seconds) < 3 or len(_l_steps) < 5:
        return
    # Paper: R=2 runs 1.91x-2.14x longer than R=1 — work is linear in
    # the number of walks. Sub-second wall times are too noisy on shared
    # hardware, so the assertion uses the deterministic step counts and
    # the seconds are reported alongside.
    r_ratio = _r_steps[2] / _r_steps[1]
    assert 1.7 < r_ratio < 2.3, r_ratio
    assert _r_steps[3] > _r_steps[2] > _r_steps[1]
    # L matters until temporal exhaustion: steps grow with L, then
    # saturate. At 1/1000 dataset scale walks exhaust earlier than the
    # paper's L=80 (whose own 4.7-5.9x for an 8x L increase already shows
    # saturation); the shape is growth-then-plateau.
    assert _l_steps[1] < _l_steps[2] < _l_steps[4]
    assert _l_steps[4] <= _l_steps[8] <= _l_steps[80]
    text = "\n\n".join(
        [
            format_series(
                {"walk_seconds": {f"R={k}": v for k, v in _r_walk_seconds.items()}},
                x_label="walks per vertex",
                title="Parameter sensitivity: R (paper: R=2 is ~2x R=1)",
            ),
            format_series(
                {"total_steps": {f"L={k}": float(v) for k, v in _l_steps.items()}},
                x_label="max length",
                title="Parameter sensitivity: L (paper: L=80 is 4.7-5.9x L=10)",
            ),
        ]
    )
    write_result("param_sensitivity", text)
