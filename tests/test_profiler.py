"""Phase profiler: hierarchy, accounting identities, absorb/fold, CLI."""

import json

import pytest

from repro.engines.base import Workload
from repro.engines.batch import BatchTeaEngine
from repro.graph.datasets import load_dataset
from repro.telemetry import NULL_PROFILER, PhaseProfiler
from repro.telemetry.profile import NullProfiler


@pytest.fixture(scope="module")
def graph():
    return load_dataset("tiny", seed=3)


@pytest.fixture(scope="module")
def spec():
    from repro.walks.apps import APPLICATIONS

    return APPLICATIONS["exponential"]


class TestPhaseAccounting:
    def test_nesting_builds_path_tuples(self):
        p = PhaseProfiler(calibrate=False)
        with p.phase("walk"):
            with p.phase("gather"):
                pass
            with p.phase("draw"):
                pass
        with p.phase("finalize"):
            pass
        assert set(p.phases) == {
            ("walk",), ("walk", "gather"), ("walk", "draw"), ("finalize",),
        }

    def test_reentry_accumulates_calls(self):
        p = PhaseProfiler(calibrate=False)
        for _ in range(5):
            with p.phase("step"):
                pass
        calls, inclusive, self_s = p.phases[("step",)]
        assert calls == 5
        assert inclusive >= self_s >= 0.0

    def test_self_plus_children_equals_inclusive(self):
        p = PhaseProfiler(calibrate=False)
        with p.phase("walk"):
            with p.phase("gather"):
                sum(range(1000))
            with p.phase("draw"):
                sum(range(1000))
        walk = p.phases[("walk",)]
        children = sum(
            cell[1] for path, cell in p.phases.items()
            if len(path) == 2 and path[0] == "walk"
        )
        assert walk[1] == pytest.approx(walk[2] + children, rel=1e-6)

    def test_root_seconds_counts_only_roots(self):
        p = PhaseProfiler(calibrate=False)
        p.add_seconds(("a",), 1.0)
        p.add_seconds(("a", "x"), 0.7)
        p.add_seconds(("b",), 2.0)
        assert p.root_seconds() == pytest.approx(3.0)
        assert p.phase_seconds("x") == pytest.approx(0.7)

    def test_phase_survives_exception(self):
        p = PhaseProfiler(calibrate=False)
        with pytest.raises(RuntimeError):
            with p.phase("walk"):
                with p.phase("gather"):
                    raise RuntimeError("boom")
        # Both frames closed and charged; the stack is empty again.
        assert ("walk", "gather") in p.phases
        assert p._stack == []
        with p.phase("next"):
            pass
        assert ("next",) in p.phases


class TestAbsorb:
    def _chunk_snapshot(self, scale=1.0):
        p = PhaseProfiler(calibrate=False)
        p.add_seconds(("chunk_exec",), 1.0 * scale, self_seconds=0.2 * scale)
        p.add_seconds(("chunk_exec", "gather"), 0.8 * scale)
        return p.snapshot()

    def test_absorb_prefixes_and_sums(self):
        parent = PhaseProfiler(calibrate=False)
        parent.absorb(self._chunk_snapshot(1.0), prefix=("walk",))
        parent.absorb(self._chunk_snapshot(2.0), prefix=("walk",))
        cell = parent.phases[("walk", "chunk_exec")]
        assert cell[0] == 2
        assert cell[1] == pytest.approx(3.0)
        assert parent.phases[("walk", "chunk_exec", "gather")][1] == (
            pytest.approx(2.4)
        )

    def test_absorb_is_associative(self):
        snaps = [self._chunk_snapshot(s) for s in (1.0, 2.0, 3.0)]
        a = PhaseProfiler(calibrate=False)
        for s in snaps:
            a.absorb(s, prefix=("walk",))
        b = PhaseProfiler(calibrate=False)
        for s in reversed(snaps):
            b.absorb(s, prefix=("walk",))
        assert set(a.phases) == set(b.phases)
        for path, cell in a.phases.items():
            # Associative up to float summation order.
            assert cell == pytest.approx(b.phases[path])
        assert a.events == b.events

    def test_negative_self_clamped_in_collapsed_output(self):
        # Synthetic parents (parallel fold) can carry negative self time;
        # the flamegraph rendering must clamp, not emit negative counts.
        p = PhaseProfiler(calibrate=False)
        p.add_seconds(("walk",), 1.0, self_seconds=-0.5)
        line = p.collapsed_stacks().splitlines()[0]
        assert line == "walk 0"

    def test_snapshot_round_trips_through_json(self):
        snap = self._chunk_snapshot()
        again = json.loads(json.dumps(snap))
        p = PhaseProfiler(calibrate=False)
        p.absorb(again, prefix=())
        assert p.phases[("chunk_exec",)][1] == pytest.approx(1.0)


class TestNullProfiler:
    def test_disabled_and_inert(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.phase("x"):
            pass
        NULL_PROFILER.add_seconds(("x",), 1.0)
        NULL_PROFILER.absorb({"phases": {"x": {}}})
        assert isinstance(NULL_PROFILER, NullProfiler)

    def test_engines_default_to_null(self, graph, spec):
        engine = BatchTeaEngine(graph, spec)
        assert engine.profiler is NULL_PROFILER
        engine.run(Workload(walks_per_vertex=1, max_length=5), seed=0)


class TestEngineProfiles:
    def test_batch_engine_charges_hot_loop_phases(self, graph, spec):
        engine = BatchTeaEngine(graph, spec)
        engine.profiler = profiler = PhaseProfiler(calibrate=False)
        engine.run(Workload(walks_per_vertex=2, max_length=20), seed=1)
        for name in ("prepare", "walk", "finalize"):
            assert (name,) in profiler.phases, profiler.phases.keys()
        for name in ("gather", "draw", "scatter"):
            assert ("walk", name) in profiler.phases
        # Hot-loop phases nest under walk and stay within its envelope.
        walk = profiler.phases[("walk",)][1]
        inner = sum(
            profiler.phases[("walk", n)][1]
            for n in ("gather", "draw", "scatter")
        )
        assert inner <= walk

    def test_format_table_and_coverage_footer(self, graph, spec):
        engine = BatchTeaEngine(graph, spec)
        engine.profiler = profiler = PhaseProfiler(calibrate=False)
        engine.run(Workload(walks_per_vertex=1, max_length=10), seed=2)
        table = profiler.format_table(wall_seconds=profiler.root_seconds())
        assert "gather" in table and "coverage:" in table

    def test_profiling_does_not_change_walks(self, graph, spec):
        workload = Workload(walks_per_vertex=2, max_length=15)
        plain = BatchTeaEngine(graph, spec)
        r1 = plain.run(workload, seed=7)
        profiled = BatchTeaEngine(graph, spec)
        profiled.profiler = PhaseProfiler(calibrate=False)
        r2 = profiled.run(workload, seed=7)
        assert r1.total_steps == r2.total_steps
        assert [p.vertices for p in r1.paths] == [p.vertices for p in r2.paths]


class TestCliProfile:
    def test_walk_profile_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "stacks.txt"
        rc = main([
            "walk", "--dataset", "tiny", "--engine", "tea-batch",
            "--app", "exponential", "--length", "10", "--max-walks", "30",
            "--profile", "--profile-out", str(out),
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "phase" in captured and "coverage:" in captured
        text = out.read_text()
        assert text.strip(), "collapsed stacks file is empty"
        for line in text.splitlines():
            path, _, micros = line.rpartition(" ")
            assert path and int(micros) >= 0
