"""Walk sinks: flush policy, formats, round-trips, engine integration."""

import numpy as np
import pytest

from repro.engines import BatchTeaEngine, TeaEngine, Workload
from repro.exceptions import GraphFormatError
from repro.walks.apps import unbiased_walk
from repro.walks.sink import DEFAULT_FLUSH_THRESHOLD, WalkSink, read_walks
from repro.walks.walker import WalkPath


def make_walk(*vertices):
    hops = [(vertices[0], None)]
    hops.extend((v, float(i + 1)) for i, v in enumerate(vertices[1:]))
    return WalkPath(hops=hops)


class TestFlushPolicy:
    def test_default_threshold_is_papers_1024(self):
        assert DEFAULT_FLUSH_THRESHOLD == 1024

    def test_flush_at_threshold(self, tmp_path):
        with WalkSink(tmp_path / "w.txt", flush_threshold=4) as sink:
            for i in range(10):
                sink.append(make_walk(i, i + 1))
            # 10 walks, threshold 4 → two automatic flushes so far.
            assert sink.flushes == 2
            assert sink.walks_written == 8
        assert sink.walks_written == 10  # close() flushes the remainder

    def test_append_requires_open(self, tmp_path):
        sink = WalkSink(tmp_path / "w.txt")
        with pytest.raises(RuntimeError):
            sink.append(make_walk(0, 1))

    def test_bad_threshold(self, tmp_path):
        with pytest.raises(ValueError):
            WalkSink(tmp_path / "w.txt", flush_threshold=0)


class TestFormats:
    def test_text_roundtrip(self, tmp_path):
        walks = [make_walk(0, 1, 2), make_walk(5), make_walk(3, 4)]
        path = tmp_path / "corpus.txt"
        with WalkSink(path, flush_threshold=2) as sink:
            for walk in walks:
                sink.append(walk)
        loaded = list(read_walks(path))
        assert [w.hops for w in loaded] == [w.hops for w in walks]

    def test_binary_roundtrip(self, tmp_path):
        walks = [make_walk(0, 1, 2), make_walk(7), make_walk(3, 4, 5, 6)]
        path = tmp_path / "corpus.twalks"
        with WalkSink(path) as sink:
            for walk in walks:
                sink.append(walk)
        loaded = list(read_walks(path))
        assert [w.hops for w in loaded] == [w.hops for w in walks]

    def test_binary_detected_by_extension(self, tmp_path):
        sink = WalkSink(tmp_path / "x.twalks")
        assert sink.binary
        assert not WalkSink(tmp_path / "x.txt").binary

    def test_bad_text_hop(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 nonsense\n")
        with pytest.raises(GraphFormatError):
            list(read_walks(path))

    def test_bad_binary_magic(self, tmp_path):
        path = tmp_path / "bad.twalks"
        path.write_bytes(b"JUNKJUNK")
        with pytest.raises(GraphFormatError):
            list(read_walks(path))

    def test_truncated_binary(self, tmp_path):
        path = tmp_path / "t.twalks"
        with WalkSink(path) as sink:
            sink.append(make_walk(0, 1, 2))
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(GraphFormatError):
            list(read_walks(path))


class TestEngineIntegration:
    @pytest.mark.parametrize("engine_cls", [TeaEngine, BatchTeaEngine])
    def test_sink_receives_all_walks(self, small_graph, tmp_path, engine_cls):
        path = tmp_path / "corpus.txt"
        engine = engine_cls(small_graph, unbiased_walk())
        with WalkSink(path, flush_threshold=8) as sink:
            result = engine.run(
                Workload(max_length=5, max_walks=30), seed=0,
                record_paths=False, sink=sink,
            )
        assert result.paths == []  # constant-memory mode
        loaded = list(read_walks(path))
        assert len(loaded) == 30
        assert sum(w.num_edges for w in loaded) == result.total_steps

    def test_sink_matches_recorded_paths(self, small_graph, tmp_path):
        path = tmp_path / "corpus.twalks"
        engine = TeaEngine(small_graph, unbiased_walk())
        with WalkSink(path) as sink:
            result = engine.run(
                Workload(max_length=5, max_walks=15), seed=1, sink=sink
            )
        loaded = list(read_walks(path))
        assert [w.hops for w in loaded] == [p.hops for p in result.paths]


class TestValidateCorpus:
    def test_valid_corpus_passes(self, small_graph, tmp_path):
        from repro.walks.sink import validate_corpus

        path = tmp_path / "c.txt"
        engine = TeaEngine(small_graph, unbiased_walk())
        with WalkSink(path) as sink:
            engine.run(Workload(max_length=5, max_walks=20), seed=0,
                       record_paths=False, sink=sink)
        count, problems = validate_corpus(small_graph, path)
        assert count == 20
        assert problems == []

    def test_corrupted_corpus_flagged(self, small_graph, tmp_path):
        from repro.walks.sink import validate_corpus

        path = tmp_path / "c.txt"
        # A hop that is not an edge, and an out-of-range start.
        path.write_text("0 1@999.0\n99999 3@1.0\n")
        count, problems = validate_corpus(small_graph, path)
        assert count == 2
        assert len(problems) == 2

    def test_wrong_graph_flagged(self, small_graph, toy_graph, tmp_path):
        from repro.walks.sink import validate_corpus

        path = tmp_path / "c.twalks"
        engine = TeaEngine(small_graph, unbiased_walk())
        with WalkSink(path) as sink:
            engine.run(Workload(max_length=6, max_walks=15), seed=1,
                       record_paths=False, sink=sink)
        _, problems = validate_corpus(toy_graph, path)
        assert problems  # walks from another graph cannot all validate
