"""TemporalGraph: CSR layout, candidate sets, static adjacency."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph.edge_stream import EdgeStream
from repro.graph.generators import temporal_powerlaw, toy_commute_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validate import check_graph


class TestLayout:
    def test_toy_graph_shape(self, toy_graph):
        assert toy_graph.num_vertices == 10
        assert toy_graph.num_edges == 18
        assert check_graph(toy_graph) == []

    def test_adjacency_time_descending(self, small_graph):
        for v in range(small_graph.num_vertices):
            _, times = small_graph.neighbors(v)
            assert np.all(times[:-1] >= times[1:]), f"vertex {v} not time-desc"

    def test_vertex7_worked_example(self, toy_graph):
        """Figure 5: vertex 7's neighbors 6..0 at times 7..1."""
        nbrs, times = toy_graph.neighbors(7)
        assert list(nbrs) == [6, 5, 4, 3, 2, 1, 0]
        assert list(times) == [7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0]

    def test_degrees_sum_to_edges(self, small_graph):
        assert small_graph.degrees().sum() == small_graph.num_edges

    def test_reserved_isolated_vertices(self):
        stream = EdgeStream.from_edges([(0, 1, 1.0)])
        graph = TemporalGraph.from_stream(stream, num_vertices=10)
        assert graph.num_vertices == 10
        assert graph.out_degree(5) == 0

    def test_vertex_id_out_of_range_rejected(self):
        stream = EdgeStream.from_edges([(0, 9, 1.0)])
        with pytest.raises(GraphFormatError):
            TemporalGraph.from_stream(stream, num_vertices=3)

    def test_edge_at(self, toy_graph):
        v, t = toy_graph.edge_at(7, 0)
        assert (v, t) == (6, 7.0)
        with pytest.raises(IndexError):
            toy_graph.edge_at(7, 99)

    def test_arrays_readonly(self, toy_graph):
        with pytest.raises(ValueError):
            toy_graph.nbr[0] = 3

    def test_ties_keep_stream_order_newest_first(self):
        # Two edges of vertex 0 at the same time: the later stream entry
        # must appear first in the time-descending adjacency.
        stream = EdgeStream([0, 0], [1, 2], [5.0, 5.0], sort=False)
        graph = TemporalGraph.from_stream(stream)
        nbrs, _ = graph.neighbors(0)
        assert list(nbrs) == [2, 1]


class TestCandidateSets:
    def test_paper_candidate_sets(self, toy_graph):
        """The three walked-through arrivals at vertex 7 (Sections 1, 3)."""
        assert toy_graph.candidate_count(7, 0.0) == 7   # from vertex 8
        assert toy_graph.candidate_count(7, 3.0) == 4   # from vertex 0
        assert toy_graph.candidate_count(7, 4.0) == 3   # from vertex 9
        assert toy_graph.candidate_count(7, 7.0) == 0
        assert toy_graph.candidate_count(7, None) == 7

    def test_strict_inequality(self, toy_graph):
        # Edge at exactly t is NOT a candidate (times must increase).
        assert toy_graph.candidate_count(7, 6.99) == 1
        assert toy_graph.candidate_count(7, 7.0) == 0

    def test_candidate_prefix_property(self, small_graph):
        """Γt(v) is exactly the first candidate_count(v, t) adjacency slots."""
        rng = np.random.default_rng(1)
        for _ in range(200):
            v = int(rng.integers(0, small_graph.num_vertices))
            t = float(rng.uniform(0, 200))
            s = small_graph.candidate_count(v, t)
            _, times = small_graph.neighbors(v)
            assert np.all(times[:s] > t)
            assert np.all(times[s:] <= t)

    def test_candidate_counts_per_edge_matches_scalar(self, small_graph):
        per_edge = small_graph.candidate_counts_per_edge()
        for e in range(small_graph.num_edges):
            v = int(small_graph.nbr[e])
            t = float(small_graph.etime[e])
            assert per_edge[e] == small_graph.candidate_count(v, t)

    def test_candidate_counts_empty_graph(self):
        graph = TemporalGraph.from_stream(EdgeStream.empty(), num_vertices=3)
        assert graph.candidate_counts_per_edge().size == 0

    def test_zero_degree_vertex(self, toy_graph):
        # Vertex 6 has no out-edges in the toy graph.
        assert toy_graph.out_degree(6) == 0
        assert toy_graph.candidate_count(6, 0.0) == 0


class TestStaticAdjacency:
    def test_undirected_membership(self, toy_graph):
        assert toy_graph.has_static_edge(7, 6)
        assert toy_graph.has_static_edge(6, 7)  # reverse direction
        assert toy_graph.has_static_edge(8, 7)
        assert not toy_graph.has_static_edge(4, 0)

    def test_static_degree(self, toy_graph):
        # Vertex 7: out to 0..6 plus in from 8, 0, 9 → 9 distinct neighbors.
        assert toy_graph.static_degree(7) == 9

    def test_matches_bruteforce(self, small_graph):
        rng = np.random.default_rng(2)
        src = np.repeat(np.arange(small_graph.num_vertices),
                        np.diff(small_graph.indptr))
        pairs = set(zip(src.tolist(), small_graph.nbr.tolist()))
        undirected = pairs | {(b, a) for a, b in pairs}
        for _ in range(300):
            u = int(rng.integers(0, small_graph.num_vertices))
            v = int(rng.integers(0, small_graph.num_vertices))
            assert small_graph.has_static_edge(u, v) == ((u, v) in undirected)


class TestRoundtrip:
    def test_to_stream_roundtrip(self, toy_graph):
        stream = toy_graph.to_stream()
        rebuilt = TemporalGraph.from_stream(stream)
        assert np.array_equal(rebuilt.indptr, toy_graph.indptr)
        assert np.array_equal(rebuilt.nbr, toy_graph.nbr)
        assert np.array_equal(rebuilt.etime, toy_graph.etime)

    def test_to_stream_without_retained_stream(self, toy_graph):
        clone = TemporalGraph(toy_graph.indptr, toy_graph.nbr, toy_graph.etime)
        stream = clone.to_stream()
        assert len(stream) == toy_graph.num_edges
        assert stream.is_time_sorted()

    def test_nbytes_positive(self, toy_graph):
        assert toy_graph.nbytes() > 0

    def test_repr(self, toy_graph):
        assert "TemporalGraph" in repr(toy_graph)


class TestCandidateCountsBatch:
    def test_matches_scalar(self, small_graph):
        rng = np.random.default_rng(5)
        vs = rng.integers(0, small_graph.num_vertices, size=300)
        ts = rng.uniform(-50, 250, size=300)
        batch = small_graph.candidate_counts_batch(vs, ts)
        for v, t, c in zip(vs, ts, batch):
            assert c == small_graph.candidate_count(int(v), float(t))

    def test_saturation_outside_time_range(self, small_graph):
        tmax = float(small_graph.etime.max())
        tmin = float(small_graph.etime.min())
        vs = np.arange(small_graph.num_vertices)
        after = small_graph.candidate_counts_batch(vs, np.full(vs.size, tmax + 1e6))
        before = small_graph.candidate_counts_batch(vs, np.full(vs.size, tmin - 1e6))
        assert np.all(after == 0)
        assert np.array_equal(before, small_graph.degrees())

    def test_empty_graph(self):
        graph = TemporalGraph.from_stream(EdgeStream.empty(), num_vertices=3)
        assert np.array_equal(
            graph.candidate_counts_batch([0, 1], [1.0, 2.0]), [0, 0]
        )
