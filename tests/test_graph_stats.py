"""Graph statistics and the analytic sampling-cost predictor."""

import numpy as np
import pytest

from repro.core.weights import WeightModel
from repro.engines import KnightKingEngine, TeaEngine, Workload
from repro.graph.edge_stream import EdgeStream
from repro.graph.generators import temporal_powerlaw
from repro.graph.stats import graph_stats, predict_sampling_costs
from repro.graph.temporal_graph import TemporalGraph
from repro.walks.apps import exponential_walk


class TestGraphStats:
    def test_toy_graph(self, toy_graph):
        stats = graph_stats(toy_graph)
        assert stats.num_vertices == 10
        assert stats.num_edges == 18
        assert stats.max_degree == 7
        assert stats.mean_degree == pytest.approx(1.8)
        assert stats.time_min == 0.0 and stats.time_max == 7.0
        assert 0.0 <= stats.dead_end_fraction <= 1.0

    def test_empty_graph(self):
        graph = TemporalGraph.from_stream(EdgeStream.empty(), num_vertices=3)
        stats = graph_stats(graph)
        assert stats.num_edges == 0
        assert stats.mean_candidate_size == 0.0

    def test_snapshot_keys(self, small_graph):
        snap = graph_stats(small_graph).snapshot()
        for key in ("mean_degree", "max_degree", "degree_skew",
                    "mean_candidate_size", "dead_end_fraction"):
            assert key in snap

    def test_candidate_stats_consistent(self, small_graph):
        stats = graph_stats(small_graph)
        sizes = small_graph.candidate_counts_per_edge()
        assert stats.mean_candidate_size == pytest.approx(sizes.mean())
        assert stats.max_candidate_size == sizes.max()


class TestPredictedCosts:
    def test_orderings(self, medium_graph):
        """Analytic Fig. 2: TEA < ITS < rejection <= full scan."""
        pred = predict_sampling_costs(
            medium_graph, WeightModel("exponential", scale=6.0)
        )
        assert pred.tea_hybrid < pred.its < pred.full_scan
        assert pred.rejection <= pred.full_scan + 1e-9
        assert pred.tea_hybrid < pred.rejection

    def test_rejection_grows_with_skew(self, medium_graph):
        mild = predict_sampling_costs(medium_graph, WeightModel("exponential", scale=50.0))
        sharp = predict_sampling_costs(medium_graph, WeightModel("exponential", scale=3.0))
        assert sharp.rejection > mild.rejection
        assert sharp.tea_hybrid == pytest.approx(mild.tea_hybrid)

    def test_uniform_weights_rejection_is_one(self, medium_graph):
        pred = predict_sampling_costs(medium_graph, WeightModel("uniform"))
        assert pred.rejection == pytest.approx(1.0)

    def test_prediction_matches_measurement(self):
        """The analytic model must agree with the instrumented engines —
        the self-test that measured Figure 2 comes from the modeled
        mechanism."""
        graph = TemporalGraph.from_stream(
            temporal_powerlaw(300, 12000, alpha=1.0, time_horizon=500.0, seed=4)
        )
        spec = exponential_walk(scale=6.0)
        pred = predict_sampling_costs(graph, spec.weight_model)
        workload = Workload(walks_per_vertex=2, max_length=80)

        kk = KnightKingEngine(graph, spec).run(workload, seed=0, record_paths=False)
        # Measured rejection trials per step vs analytic (arrival-weighted
        # approximation): same order of magnitude and within 2x.
        measured_trials = kk.counters.rejection_trials / kk.counters.steps
        assert measured_trials == pytest.approx(pred.rejection, rel=1.0)

        tea = TeaEngine(graph, spec).run(workload, seed=0, record_paths=False)
        assert tea.counters.edges_per_step == pytest.approx(pred.tea_hybrid, rel=1.0)

    def test_empty_graph(self):
        graph = TemporalGraph.from_stream(EdgeStream.empty(), num_vertices=2)
        pred = predict_sampling_costs(graph, WeightModel("uniform"))
        assert pred.full_scan == 0.0

    def test_subsampling(self, medium_graph):
        full = predict_sampling_costs(medium_graph, WeightModel("uniform"),
                                      max_samples=None)
        sub = predict_sampling_costs(medium_graph, WeightModel("uniform"),
                                     max_samples=500, seed=1)
        assert sub.full_scan == pytest.approx(full.full_scan, rel=0.35)
