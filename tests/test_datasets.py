"""Dataset registry: Table 3 analogues."""

import pytest

from repro.graph.datasets import DATASETS, EVALUATION_DATASETS, load_dataset


class TestRegistry:
    def test_all_evaluation_datasets_registered(self):
        for name in ("growth", "edit", "delicious", "twitter"):
            assert name in DATASETS

    def test_paper_metadata_recorded(self):
        spec = DATASETS["twitter"]
        assert spec.paper_edges == 1_468_365_000
        assert spec.paper_mean_degree == pytest.approx(74.678)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("nope")


class TestGeneration:
    def test_deterministic(self):
        a = DATASETS["tiny"].generate(seed=0)
        b = DATASETS["tiny"].generate(seed=0)
        assert a == b

    def test_scale_knob(self):
        small = DATASETS["tiny"].generate(seed=0, scale=0.5)
        full = DATASETS["tiny"].generate(seed=0, scale=1.0)
        assert len(small) < len(full)

    @pytest.mark.parametrize("name", list(EVALUATION_DATASETS))
    def test_mean_degree_mirrors_paper(self, name):
        """Analogue mean degree within 25% of the paper's (Table 3)."""
        graph = load_dataset(name, seed=0, scale=0.25)
        paper = DATASETS[name].paper_mean_degree
        assert graph.mean_degree() == pytest.approx(paper, rel=0.30)

    def test_relative_sizes_preserved(self):
        """twitter > delicious > edit > growth by edge count, like Table 3."""
        sizes = {
            name: DATASETS[name].num_edges for name in EVALUATION_DATASETS
        }
        assert sizes["twitter"] > sizes["delicious"] > sizes["edit"] > sizes["growth"]
