"""Full alias-method index: O(1) draws, O(D²) space, simulated OOM."""

import numpy as np
import pytest

from repro.core.alias_index import FullAliasIndex, required_bytes
from repro.core.weights import WeightModel
from repro.exceptions import SimulatedOOM
from repro.rng import make_rng
from tests.conftest import chisquare_ok


class TestRequiredBytes:
    def test_quadratic_in_degree(self, toy_graph):
        need = required_bytes(toy_graph)
        degrees = toy_graph.degrees()
        expected = int((degrees * (degrees + 1) / 2).sum() * 16)
        assert need >= expected

    def test_grows_quadratically(self):
        from repro.graph.generators import temporal_star
        from repro.graph.temporal_graph import TemporalGraph

        small = TemporalGraph.from_stream(temporal_star(100, seed=0))
        big = TemporalGraph.from_stream(temporal_star(1000, seed=0))
        ratio = required_bytes(big) / required_bytes(small)
        assert 50 <= ratio <= 200  # ~quadratic: (1000/100)^2 = 100


class TestBuild:
    def test_oom_when_over_budget(self, small_graph):
        weights = WeightModel("uniform").compute(small_graph)
        with pytest.raises(SimulatedOOM) as excinfo:
            FullAliasIndex.build(small_graph, weights, budget_bytes=1024)
        assert excinfo.value.required_bytes > 1024
        assert "simulated OOM" in str(excinfo.value)

    def test_distribution_matches_exact(self, toy_graph):
        weights = WeightModel("linear_rank").compute(toy_graph)
        index = FullAliasIndex.build(toy_graph, weights)
        rng = make_rng(0)
        lo = toy_graph.indptr[7]
        for s in (1, 3, 7):
            probs = weights[lo : lo + s] / weights[lo : lo + s].sum()
            counts = np.zeros(s)
            for _ in range(20000):
                counts[index.sample(7, s, rng)] += 1
            assert chisquare_ok(counts, probs), s

    def test_o1_cost(self, toy_graph):
        from repro.sampling.counters import CostCounters

        weights = WeightModel("uniform").compute(toy_graph)
        index = FullAliasIndex.build(toy_graph, weights)
        counters = CostCounters()
        rng = make_rng(0)
        for _ in range(100):
            counters.record_step()
            index.sample(7, 7, rng, counters)
        assert counters.edges_per_step == 1.0  # exactly one alias draw

    def test_empty_candidate_rejected(self, toy_graph):
        from repro.exceptions import EmptyCandidateSetError

        weights = WeightModel("uniform").compute(toy_graph)
        index = FullAliasIndex.build(toy_graph, weights)
        with pytest.raises(EmptyCandidateSetError):
            index.sample(7, 0, make_rng(0))

    def test_nbytes_at_least_required(self, toy_graph):
        weights = WeightModel("uniform").compute(toy_graph)
        index = FullAliasIndex.build(toy_graph, weights)
        assert index.nbytes() >= required_bytes(toy_graph) - 1024
