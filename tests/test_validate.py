"""Graph validation and temporal-path checking."""

import numpy as np

from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validate import check_graph, is_temporal_path


class TestCheckGraph:
    def test_valid_graph_passes(self, small_graph):
        assert check_graph(small_graph) == []

    def test_detects_unsorted_adjacency(self):
        # Hand-build a CSR with ascending (wrong) times.
        indptr = np.array([0, 2])
        nbr = np.array([0, 0])
        etime = np.array([1.0, 2.0])  # ascending: invalid
        graph = TemporalGraph(indptr, nbr, etime)
        problems = check_graph(graph)
        assert any("time-descending" in p for p in problems)

    def test_detects_bad_neighbor(self):
        indptr = np.array([0, 1])
        nbr = np.array([7])  # out of range for 1-vertex graph
        etime = np.array([1.0])
        graph = TemporalGraph(indptr, nbr, etime)
        assert any("out of range" in p for p in check_graph(graph))


class TestIsTemporalPath:
    def test_valid_path(self, toy_graph):
        path = [(9, None), (7, 4.0), (5, 6.0)]
        assert is_temporal_path(toy_graph, path)

    def test_time_order_violation(self, toy_graph):
        path = [(8, None), (7, 0.0), (0, 1.0), (7, 3.0), (0, 1.0)]
        assert not is_temporal_path(toy_graph, path)

    def test_nonexistent_edge(self, toy_graph):
        path = [(9, None), (4, 1.0)]
        assert not is_temporal_path(toy_graph, path)

    def test_equal_times_rejected(self, toy_graph):
        # 8 -> 7 at t=0, then 7 -> ? at the same time 0: no such edge, and
        # even a fabricated one would violate strict ordering.
        path = [(8, None), (7, 0.0), (0, 0.0)]
        assert not is_temporal_path(toy_graph, path)

    def test_single_vertex_path(self, toy_graph):
        assert is_temporal_path(toy_graph, [(3, None)])
