"""Edge-list I/O: text and binary formats."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph import io as graph_io
from repro.graph.edge_stream import EdgeStream
from repro.graph.generators import temporal_powerlaw


@pytest.fixture
def stream():
    return temporal_powerlaw(20, 150, seed=0)


class TestText:
    def test_roundtrip(self, stream, tmp_path):
        path = tmp_path / "edges.txt"
        graph_io.save_edge_list(stream, path)
        loaded = graph_io.load_edge_list(path)
        assert np.array_equal(loaded.src, stream.src)
        assert np.array_equal(loaded.dst, stream.dst)
        assert np.allclose(loaded.time, stream.time)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n% konect-style\n\n0 1 3.5\n1 2 4\n")
        loaded = graph_io.load_edge_list(path)
        assert len(loaded) == 2

    def test_missing_timestamp_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError, match="expected"):
            graph_io.load_edge_list(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b c\n")
        with pytest.raises(GraphFormatError):
            graph_io.load_edge_list(path)


class TestBinary:
    def test_roundtrip(self, stream, tmp_path):
        path = tmp_path / "edges.tegb"
        graph_io.save_binary(stream, path)
        loaded = graph_io.load_binary(path)
        assert loaded == stream

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.tegb"
        path.write_bytes(b"NOPE" * 10)
        with pytest.raises(GraphFormatError, match="not a .tegb"):
            graph_io.load_binary(path)

    def test_truncated(self, stream, tmp_path):
        path = tmp_path / "edges.tegb"
        graph_io.save_binary(stream, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(GraphFormatError, match="truncated"):
            graph_io.load_binary(path)


class TestAuto:
    def test_dispatch_by_extension(self, stream, tmp_path):
        bin_path = tmp_path / "e.tegb"
        txt_path = tmp_path / "e.txt"
        graph_io.save_binary(stream, bin_path)
        graph_io.save_edge_list(stream, txt_path)
        assert graph_io.load_auto(bin_path) == stream
        assert len(graph_io.load_auto(txt_path)) == len(stream)
