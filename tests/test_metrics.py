"""Memory reports, byte formatting, and phase timing."""

import time

import pytest

from repro.metrics.memory import MemoryReport, format_bytes
from repro.metrics.timing import PhaseTimer


class TestFormatBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1024, "1.00 KiB"),
            (1536, "1.50 KiB"),
            (1024**2, "1.00 MiB"),
            (1024**3, "1.00 GiB"),
        ],
    )
    def test_units(self, n, expected):
        assert format_bytes(n) == expected


class TestMemoryReport:
    def test_add_and_total(self):
        report = MemoryReport()
        report.add("a", 100).add("b", 200).add("a", 50)
        assert report.total == 350
        assert report.components["a"] == 150

    def test_fraction(self):
        report = MemoryReport()
        report.add("index", 900).add("graph", 100)
        assert report.fraction("index") == pytest.approx(0.9)
        assert report.fraction("missing") == 0.0

    def test_fraction_empty(self):
        assert MemoryReport().fraction("x") == 0.0

    def test_pretty_sorted_by_size(self):
        report = MemoryReport()
        report.add("small", 10).add("large", 10_000)
        lines = report.pretty().splitlines()
        assert "total" in lines[0]
        assert "large" in lines[1]


class TestPhaseTimer:
    def test_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.01)
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert timer.seconds["a"] >= 0.01
        assert timer.total == pytest.approx(sum(timer.seconds.values()))

    def test_snapshot_includes_total(self):
        timer = PhaseTimer()
        with timer.phase("x"):
            pass
        snap = timer.snapshot()
        assert "x" in snap and "total" in snap

    def test_exception_still_recorded(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("boom"):
                raise RuntimeError()
        assert "boom" in timer.seconds

    def test_nested_same_name_counted_once(self):
        # Re-entering an open phase must not double-count the overlap:
        # only the outermost enter/exit pair accumulates.
        timer = PhaseTimer()
        with timer.phase("a"):
            with timer.phase("a"):
                time.sleep(0.01)
        once = timer.seconds["a"]
        assert 0.01 <= once < 0.02 + 0.05  # not ~2x the sleep

    def test_nested_same_name_exception_unwinds_depth(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("a"):
                with timer.phase("a"):
                    raise RuntimeError()
        # depth unwound: a later phase records normally
        with timer.phase("a"):
            time.sleep(0.01)
        assert timer.seconds["a"] >= 0.01
