"""Deletion support: tombstones, lazy rebuilds, distribution correctness."""

import numpy as np
import pytest

from repro.core.deletions import TombstoneHPAT
from repro.core.weights import WeightModel
from repro.engines import Workload
from repro.engines.mutable import MutableTeaEngine
from repro.exceptions import EmptyCandidateSetError
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validate import is_temporal_path
from repro.rng import make_rng
from repro.walks.apps import exponential_walk, unbiased_walk
from tests.conftest import chisquare_ok


def chain_graph(out_degree: int = 16) -> TemporalGraph:
    """One vertex with many out-edges at distinct times."""
    edges = [(0, i + 1, float(i)) for i in range(out_degree)]
    return TemporalGraph.from_edges(edges)


@pytest.fixture
def tomb():
    graph = chain_graph(16)
    weights = WeightModel("linear_rank").compute(graph)
    return graph, TombstoneHPAT(graph, weights, rebuild_threshold=0.5)


class TestMutation:
    def test_delete_position(self, tomb):
        graph, index = tomb
        index.delete_position(0, 3)
        assert index.is_dead(0, 3)
        assert index.alive_count(0, 16) == 15
        assert index.stats.deletions == 1

    def test_double_delete_noop(self, tomb):
        _, index = tomb
        index.delete_position(0, 3)
        index.delete_position(0, 3)
        assert index.stats.deletions == 1

    def test_delete_edge_by_triple(self, tomb):
        graph, index = tomb
        # Position 0 is the newest edge: (0, 16, 15.0).
        assert index.delete_edge(0, 16, 15.0)
        assert index.is_dead(0, 0)
        assert not index.delete_edge(0, 16, 15.0)  # already dead
        assert not index.delete_edge(0, 99, 1.0)   # never existed

    def test_delete_out_of_range(self, tomb):
        _, index = tomb
        with pytest.raises(IndexError):
            index.delete_position(0, 99)

    def test_delete_vertex_out_edges(self, tomb):
        _, index = tomb
        assert index.delete_vertex_out_edges(0) == 16
        assert index.alive_count(0, 16) == 0

    def test_rebuild_triggered_at_threshold(self, tomb):
        _, index = tomb
        for position in range(8):  # 8/16 = 0.5 threshold
            index.delete_position(0, position)
        assert index.stats.vertex_rebuilds >= 1

    def test_bad_threshold(self):
        graph = chain_graph(4)
        weights = WeightModel("uniform").compute(graph)
        with pytest.raises(ValueError):
            TombstoneHPAT(graph, weights, rebuild_threshold=0.0)


class TestAliveCounts:
    def test_prefix_scoped(self, tomb):
        _, index = tomb
        index.delete_position(0, 2)
        index.delete_position(0, 10)
        assert index.alive_count(0, 2) == 2    # deletions at 2, 10 outside
        assert index.alive_count(0, 3) == 2
        assert index.alive_count(0, 16) == 14


class TestSamplingCorrectness:
    def test_never_samples_dead_before_rebuild(self, tomb):
        _, index = tomb
        index.delete_position(0, 0)  # below threshold: no rebuild yet
        assert index.stats.vertex_rebuilds == 0
        rng = make_rng(0)
        for _ in range(2000):
            assert index.sample(0, 16, rng) != 0

    def test_never_samples_dead_after_rebuild(self, tomb):
        _, index = tomb
        for position in (0, 1, 2, 3, 4, 5, 6, 7):
            index.delete_position(0, position)
        assert index.stats.vertex_rebuilds >= 1
        rng = make_rng(1)
        draws = {index.sample(0, 16, rng) for _ in range(3000)}
        assert draws == set(range(8, 16))

    def test_distribution_restricted_to_live(self):
        """Live-edge distribution equals the exact renormalised weights,
        both in the tombstone-rejection regime and after rebuild."""
        graph = chain_graph(12)
        weights = WeightModel("linear_rank").compute(graph)
        for threshold in (0.9, 0.05):  # never rebuild / rebuild instantly
            index = TombstoneHPAT(graph, weights, rebuild_threshold=threshold)
            for position in (1, 4, 7):
                index.delete_position(0, position)
            live = np.array([p for p in range(12) if p not in (1, 4, 7)])
            w = weights[live]
            probs = w / w.sum()
            rng = make_rng(int(threshold * 100))
            counts = {int(p): 0 for p in live}
            for _ in range(25000):
                counts[index.sample(0, 12, rng)] += 1
            observed = np.array([counts[int(p)] for p in live], dtype=float)
            assert chisquare_ok(observed, probs), threshold

    def test_all_dead_prefix_raises(self, tomb):
        _, index = tomb
        for position in range(16):
            index.delete_position(0, position)
        with pytest.raises(EmptyCandidateSetError):
            index.sample(0, 16, make_rng(0))

    def test_fallback_scan_when_tombstones_dominate(self):
        """One live edge among many stale tombstones: the bounded retry
        budget kicks in and the exact fallback still returns it."""
        graph = chain_graph(64)
        weights = WeightModel("linear_rank").compute(graph)
        index = TombstoneHPAT(graph, weights, rebuild_threshold=1.0)
        for position in range(63):  # only position 63 (oldest) stays live
            index.delete_position(0, position)
        rng = make_rng(2)
        for _ in range(50):
            assert index.sample(0, 64, rng) == 63
        assert index.stats.fallback_scans > 0


class TestMutableEngine:
    def test_walks_avoid_deleted_edges(self, small_graph):
        engine = MutableTeaEngine(small_graph, unbiased_walk())
        engine.prepare()
        # Delete the busiest vertex's newest edge and run walks.
        v = int(np.argmax(small_graph.degrees()))
        dst, t = small_graph.edge_at(v, 0)
        assert engine.delete_edge(v, dst, t)
        result = engine.run(Workload(max_length=10, max_walks=40), seed=0)
        for path in result.paths:
            for (a, _), (b, tb) in zip(path.hops, path.hops[1:]):
                assert not (a == v and b == dst and tb == t)

    def test_vertex_deletion_dead_ends(self, small_graph):
        engine = MutableTeaEngine(small_graph, unbiased_walk())
        engine.prepare()
        v = int(np.argmax(small_graph.degrees()))
        engine.delete_vertex(v)
        result = engine.run(
            Workload(start_vertices=[v], walks_per_vertex=10, max_length=5), seed=0
        )
        assert all(p.num_edges == 0 for p in result.paths)

    def test_paths_still_temporal_after_churn(self, small_graph):
        engine = MutableTeaEngine(small_graph, exponential_walk(scale=20.0),
                                  rebuild_threshold=0.2)
        engine.prepare()
        rng = make_rng(3)
        # Random deletion churn across the graph.
        for _ in range(200):
            v = int(rng.integers(0, small_graph.num_vertices))
            d = small_graph.out_degree(v)
            if d:
                engine.index.delete_position(v, int(rng.integers(0, d)))
        result = engine.run(Workload(max_length=10, max_walks=30), seed=1)
        for path in result.paths:
            assert is_temporal_path(engine.graph, path.hops)
            for (a, _), (b, tb) in zip(path.hops, path.hops[1:]):
                nbrs, times = engine.graph.neighbors(a)
                positions = np.flatnonzero((nbrs == b) & (times == tb))
                assert any(not engine.index.is_dead(a, int(p)) for p in positions)

    def test_memory_report_includes_tombstones(self, small_graph):
        engine = MutableTeaEngine(small_graph, unbiased_walk())
        engine.prepare()
        assert "tombstone_index" in engine.memory_report().components

    def test_deletion_stats_property(self, small_graph):
        engine = MutableTeaEngine(small_graph, unbiased_walk())
        v = int(np.argmax(small_graph.degrees()))
        engine.prepare()
        engine.index.delete_position(v, 0)
        assert engine.deletion_stats.deletions == 1


class TestEpochPinning:
    def _paths(self, result):
        return [tuple(p.hops) for p in result.paths]

    def test_pinned_walks_survive_deletions(self, small_graph):
        engine = MutableTeaEngine(small_graph, exponential_walk(scale=20.0))
        engine.prepare()
        workload = Workload(max_length=10, max_walks=40)
        want = self._paths(engine.run(workload, seed=7))
        with engine.pin() as pin:
            rng = make_rng(11)
            for _ in range(150):
                v = int(rng.integers(0, small_graph.num_vertices))
                d = small_graph.out_degree(v)
                if d:
                    engine.index.delete_position(v, int(rng.integers(0, d)))
            # The pinned epoch walks exactly like the pre-deletion engine.
            assert self._paths(pin.run(workload, seed=7)) == want
            # The live engine has moved on.
            assert engine.epoch > pin.epoch
        live = self._paths(engine.run(workload, seed=7))
        assert live != want

    def test_pin_defers_rebuilds_until_release(self, small_graph):
        engine = MutableTeaEngine(small_graph, unbiased_walk(),
                                  rebuild_threshold=0.1)
        engine.prepare()
        v = int(np.argmax(small_graph.degrees()))
        d = small_graph.out_degree(v)
        pin = engine.pin()
        for pos in range(d - 1):
            engine.index.delete_position(v, pos)
        assert engine.index.stats.deferred_rebuilds > 0
        rebuilds_during_pin = engine.index.stats.vertex_rebuilds
        pin.release()
        # Release flushes the deferred rebuilds.
        assert engine.index.stats.vertex_rebuilds > rebuilds_during_pin

    def test_epoch_advances_per_deletion(self, small_graph):
        engine = MutableTeaEngine(small_graph, unbiased_walk())
        engine.prepare()
        assert engine.epoch == 0
        v = int(np.argmax(small_graph.degrees()))
        engine.index.delete_position(v, 0)
        engine.index.delete_position(v, 1)
        assert engine.epoch == 2

    def test_nested_pin_runs_restore_previous(self, small_graph):
        """pin.run temporarily redirects reads, then restores."""
        engine = MutableTeaEngine(small_graph, unbiased_walk())
        engine.prepare()
        workload = Workload(max_length=8, max_walks=20)
        outer = engine.pin()
        v = int(np.argmax(small_graph.degrees()))
        for pos in range(small_graph.out_degree(v)):
            engine.index.delete_position(v, pos)
        inner = engine.pin()
        want_outer = self._paths(outer.run(workload, seed=2))
        want_inner = self._paths(inner.run(workload, seed=2))
        # Interleave: outer still sees pre-deletion state afterwards.
        assert self._paths(outer.run(workload, seed=2)) == want_outer
        assert self._paths(inner.run(workload, seed=2)) == want_inner
        assert engine._pin_index is None
        inner.release()
        outer.release()
