"""Write-ahead log + checkpoint: framing, recovery, corruption handling."""

import struct

import numpy as np
import pytest

from repro.exceptions import ChecksumError, WalCorruptionError
from repro.streaming.wal import (
    SEGMENT_MAGIC,
    WriteAheadLog,
    encode_edge_batch,
    decode_edge_batch,
    list_segments,
    scrub_wal,
)
from repro.streaming.snapshot import (
    load_checkpoint,
    load_manifest,
    verify_checkpoint,
    write_checkpoint,
)


def _batch(n: int, t0: float = 0.0):
    src = np.arange(n, dtype=np.int64)
    dst = np.arange(n, dtype=np.int64) + 1
    times = t0 + np.arange(n, dtype=np.float64)
    return src, dst, times


def _append_batches(directory, batches, **kwargs):
    with WriteAheadLog(directory, **kwargs) as wal:
        for n, t0 in batches:
            wal.append_edges(*_batch(n, t0), sync=True)
    return [(_batch(n, t0)) for n, t0 in batches]


class TestFraming:
    def test_append_replay_roundtrip(self, tmp_path):
        want = _append_batches(tmp_path, [(3, 0.0), (5, 10.0), (1, 20.0)])
        got = list(WriteAheadLog.replay(tmp_path))
        assert len(got) == 3
        for (w_src, w_dst, w_t), (_lsn, src, dst, times) in zip(want, got):
            np.testing.assert_array_equal(src, w_src)
            np.testing.assert_array_equal(dst, w_dst)
            np.testing.assert_array_equal(times, w_t)

    def test_encode_decode_roundtrip(self):
        src, dst, times = _batch(7, 3.0)
        out = decode_edge_batch(encode_edge_batch(src, dst, times))
        np.testing.assert_array_equal(out[0], src)
        np.testing.assert_array_equal(out[1], dst)
        np.testing.assert_array_equal(out[2], times)

    def test_rotation_and_positions(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=256) as wal:
            for i in range(8):
                wal.append_edges(*_batch(4, float(i)))
            assert wal.rotations > 0
        segments = list_segments(tmp_path)
        assert len(segments) == wal.rotations + 1
        lsns = [lsn for lsn, *_ in WriteAheadLog.replay(tmp_path)]
        assert lsns == sorted(lsns)
        assert len(lsns) == 8

    def test_group_commit_batches_fsyncs(self, tmp_path):
        with WriteAheadLog(tmp_path, group_commit=4) as eager:
            pass
        with WriteAheadLog(tmp_path, group_commit=4) as wal:
            for i in range(8):
                wal.append_edges(*_batch(2, float(i)))
            assert wal.fsyncs == 2  # one barrier per 4 appends

    def test_trim_before_drops_old_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=256) as wal:
            for i in range(8):
                wal.append_edges(*_batch(4, float(i)))
            keep = wal.position[0]
            wal.trim_before(keep)
        remaining = [seq for seq, _ in list_segments(tmp_path)]
        assert min(remaining) == keep
        # Replay of the surviving suffix still decodes cleanly.
        assert all(
            src.size == 4 for _lsn, src, _d, _t in WriteAheadLog.replay(
                tmp_path, start=(keep, 0)
            )
        )


class TestCrashRecovery:
    """The satellite property test: truncate at *every* byte offset."""

    def test_replay_at_every_truncation_offset(self, tmp_path):
        batches = [(3, 0.0), (6, 10.0), (2, 20.0), (5, 30.0)]
        _append_batches(tmp_path, batches)
        (seq, path), = [
            (seq, p) for seq, p in list_segments(tmp_path)
        ]
        data = path.read_bytes()

        # Frame start offsets, from the replay's own accounting.
        frame_starts = [
            lsn[1] for lsn, _s, _d, _t in WriteAheadLog.replay(tmp_path)
        ]
        assert len(frame_starts) == len(batches)

        def durable_frames(cut: int) -> int:
            count = 0
            for off in frame_starts:
                if off + 8 > cut:
                    break
                length = struct.unpack_from("<I", data, off)[0]
                if off + 8 + length > cut:
                    break
                count += 1
            return count

        for cut in range(len(SEGMENT_MAGIC), len(data) + 1):
            path.write_bytes(data[:cut])
            want = durable_frames(cut)
            # A fresh writer open repairs the torn tail in place ...
            with WriteAheadLog(tmp_path) as wal:
                torn = wal.truncated_tail_bytes
            assert torn == cut - (
                frame_starts[want] if want < len(frame_starts) else cut
            )
            # ... and replay yields exactly the durable prefix.
            recovered = list(WriteAheadLog.replay(tmp_path))
            assert len(recovered) == want, f"cut={cut}"
            for (n, t0), (_lsn, src, _dst, times) in zip(batches, recovered):
                assert src.size == n and times[0] == t0
        # Restore for any later assertions.
        path.write_bytes(data)

    def test_mid_log_corruption_raises(self, tmp_path):
        # Corruption in a non-last segment is *not* a repairable tear:
        # replay must refuse rather than silently drop durable records.
        with WriteAheadLog(tmp_path, segment_bytes=256) as wal:
            for i in range(8):
                wal.append_edges(*_batch(4, float(i)), sync=True)
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        _seq, path = segments[0]
        data = bytearray(path.read_bytes())
        data[len(SEGMENT_MAGIC) + 12] ^= 0xFF  # payload byte of frame 0
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog.replay(tmp_path))
        report = scrub_wal(tmp_path)
        assert not report["clean"]
        assert report["corrupt"]

    def test_bad_frame_in_last_segment_is_a_tear(self, tmp_path):
        # In the last segment a CRC mismatch marks the tear point: the
        # suffix is discarded on reopen, the prefix survives.
        _append_batches(tmp_path, [(4, 0.0), (4, 10.0), (4, 20.0)])
        starts = [lsn[1] for lsn, *_ in WriteAheadLog.replay(tmp_path)]
        (_seq, path), = list_segments(tmp_path)
        data = bytearray(path.read_bytes())
        data[starts[1] + 12] ^= 0xFF
        path.write_bytes(bytes(data))
        recovered = list(WriteAheadLog.replay(tmp_path))
        assert len(recovered) == 1
        with WriteAheadLog(tmp_path) as wal:
            assert wal.truncated_tail_bytes == len(data) - starts[1]

    def test_scrub_clean_and_torn_tail(self, tmp_path):
        _append_batches(tmp_path, [(4, 0.0), (4, 10.0)])
        report = scrub_wal(tmp_path)
        assert report["clean"] and report["frames_checked"] == 2
        (_seq, path), = list_segments(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # tear the tail
        report = scrub_wal(tmp_path)
        assert report["clean"]  # torn tail is repairable, not corruption
        assert report["torn_tail"] is not None


class TestCheckpoint:
    def _write(self, tmp_path, n=10, batches=(4, 6)):
        src, dst, times = _batch(n)
        sizes = np.asarray(batches, dtype=np.int64)
        return write_checkpoint(
            tmp_path, src, dst, times, sizes, epoch=len(batches),
            wal_position=(2, 128),
        )

    def test_roundtrip(self, tmp_path):
        manifest = self._write(tmp_path)
        assert load_manifest(tmp_path) == manifest
        loaded = load_checkpoint(tmp_path)
        assert loaded is not None
        got_manifest, src, dst, times, sizes = loaded
        assert got_manifest["epoch"] == 2
        assert got_manifest["wal"] == {"segment": 2, "offset": 128}
        assert src.size == 10 and sizes.tolist() == [4, 6]
        np.testing.assert_array_equal(times, np.arange(10, dtype=np.float64))

    def test_missing_is_none(self, tmp_path):
        assert load_manifest(tmp_path) is None
        assert load_checkpoint(tmp_path) is None
        assert verify_checkpoint(tmp_path) is None

    def test_corrupt_checkpoint_raises_and_scrubs(self, tmp_path):
        manifest = self._write(tmp_path)
        path = tmp_path / manifest["checkpoint"]
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ChecksumError):
            load_checkpoint(tmp_path)
        report = verify_checkpoint(tmp_path)
        assert report is not None and not report["ok"]
        full = scrub_wal(tmp_path)
        assert not full["clean"]
