"""Out-of-core PAT: persistence, identical draws, I/O accounting."""

import numpy as np
import pytest

from repro.core.builder import build_pat
from repro.core.outofcore import OutOfCorePAT, TrunkStore
from repro.core.weights import WeightModel
from repro.rng import make_rng
from repro.sampling.counters import CostCounters


@pytest.fixture
def ooc_setup(medium_graph, tmp_path):
    weights = WeightModel("exponential", scale=20.0).compute(medium_graph)
    pat = build_pat(medium_graph, weights, trunk_size=8)
    store = TrunkStore.persist(pat, tmp_path / "trunks").open()
    return pat, OutOfCorePAT(pat, store), store


class TestPersistence:
    def test_files_written(self, ooc_setup, tmp_path):
        for name in ("c.bin", "prob.bin", "alias.bin"):
            assert (tmp_path / "trunks" / name).exists()

    def test_context_manager(self, medium_graph, tmp_path):
        weights = WeightModel("uniform").compute(medium_graph)
        pat = build_pat(medium_graph, weights, trunk_size=4)
        store = TrunkStore.persist(pat, tmp_path / "s")
        with store as s:
            p, a = s.read_alias_trunk(0, 4, None)
            assert p.size == 4 and a.size == 4
        assert store._c is None  # closed


class TestDrawEquivalence:
    def test_identical_draws_same_seed(self, medium_graph, ooc_setup):
        """Same seed ⇒ byte-identical sample sequence vs in-memory PAT."""
        pat, ooc, _ = ooc_setup
        degrees = medium_graph.degrees()
        for v in np.argsort(degrees)[-5:]:
            d = int(degrees[v])
            for s in {1, 2, d // 2, d - 1, d}:
                if s < 1:
                    continue
                r1, r2 = make_rng(int(v) * 7 + s), make_rng(int(v) * 7 + s)
                assert pat.sample(int(v), s, r1) == ooc.sample(int(v), s, r2)

    def test_candidate_weight_matches(self, medium_graph, ooc_setup):
        pat, ooc, _ = ooc_setup
        v = int(np.argmax(medium_graph.degrees()))
        for s in (1, 5, medium_graph.out_degree(v)):
            assert ooc.candidate_weight(v, s) == pytest.approx(
                pat.candidate_weight(v, s)
            )


class TestIOAccounting:
    def test_per_step_io_is_trunk_sized(self, medium_graph, ooc_setup):
        """Each step reads O(trunkSize) bytes, not O(D) (Figure 14)."""
        _, ooc, _ = ooc_setup
        v = int(np.argmax(medium_graph.degrees()))
        d = medium_graph.out_degree(v)
        counters = CostCounters()
        rng = make_rng(0)
        n = 200
        for _ in range(n):
            ooc.sample(v, d, rng, counters)
        bytes_per_step = counters.io_bytes / n
        trunk_bytes = 8 * 16  # trunkSize * (prob + alias)
        assert bytes_per_step <= 2 * trunk_bytes + 64
        assert bytes_per_step < d * 8  # far below a full-degree load

    def test_resident_memory_small(self, medium_graph, ooc_setup):
        pat, ooc, _ = ooc_setup
        # Resident state ≈ |E|/trunkSize floats, well under the full PAT.
        assert ooc.resident_nbytes() < pat.nbytes() / 2

    def test_io_counted_for_partial_trunk(self, medium_graph, ooc_setup):
        _, ooc, _ = ooc_setup
        v = int(np.argmax(medium_graph.degrees()))
        counters = CostCounters()
        rng = make_rng(1)
        # s=3 < trunkSize=8 → always the partial-trunk ITS path.
        for _ in range(50):
            ooc.sample(v, 3, rng, counters)
        assert counters.io_bytes > 0
