"""Bench-history store: records, direction heuristics, compare gating."""

import json

import pytest

from repro.benchhistory import (
    HISTORY_SCHEMA,
    append_record,
    compare,
    compare_records,
    format_compare,
    format_history,
    history_path,
    load_history,
    machine_fingerprint,
    make_record,
    metric_direction,
)


def _record(walk_s, ts, **extra):
    rec = make_record("demo", dict({"walk_s": walk_s}, **extra))
    rec["ts"] = ts
    return rec


class TestDirections:
    @pytest.mark.parametrize("name, expected", [
        ("walk_s", "lower"),
        ("prepare_seconds", "lower"),
        ("p99_latency", "lower"),
        ("io_bytes", "lower"),
        ("cache_miss", "lower"),
        ("speedup_w4", "higher"),
        ("steps_per_sec", "higher"),
        ("throughput", "higher"),
        ("cache_hit_ratio", "higher"),
        ("mystery_metric", "lower"),  # conservative default
    ])
    def test_heuristics(self, name, expected):
        assert metric_direction(name) == expected

    def test_higher_checked_before_lower(self):
        # 'per_sec' beats the trailing 'seconds'-ish patterns.
        assert metric_direction("walks_per_sec") == "higher"


class TestRecords:
    def test_make_record_shape(self):
        rec = make_record("demo", {"walk_s": 1.5, "steps": 100},
                          meta={"dataset": "tiny"})
        assert rec["schema"] == HISTORY_SCHEMA
        assert rec["bench"] == "demo"
        assert rec["metrics"] == {"walk_s": 1.5, "steps": 100.0}
        assert rec["meta"] == {"dataset": "tiny"}
        assert rec["ts"] > 0
        assert set(rec["machine"]) == set(machine_fingerprint())

    def test_non_numeric_metrics_rejected(self):
        with pytest.raises(TypeError):
            make_record("demo", {"walk_s": "fast"})
        with pytest.raises(TypeError):
            make_record("demo", {"ok": True})  # bools are not metrics

    def test_append_and_load(self, tmp_path):
        for i in range(3):
            append_record(_record(1.0 + i, ts=1000.0 + i),
                          history_dir=tmp_path)
        records = load_history("demo", history_dir=tmp_path)
        assert [r["metrics"]["walk_s"] for r in records] == [1.0, 2.0, 3.0]

    def test_load_skips_corrupt_lines(self, tmp_path):
        path = history_path("demo", tmp_path)
        append_record(_record(1.0, ts=1.0), history_dir=tmp_path)
        with open(path, "a") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"schema": "other/v9", "bench": "demo"})
                     + "\n")
        append_record(_record(2.0, ts=2.0), history_dir=tmp_path)
        records = load_history("demo", history_dir=tmp_path)
        assert len(records) == 2

    def test_load_sorts_by_timestamp(self, tmp_path):
        append_record(_record(2.0, ts=200.0), history_dir=tmp_path)
        append_record(_record(1.0, ts=100.0), history_dir=tmp_path)
        records = load_history("demo", history_dir=tmp_path)
        assert [r["ts"] for r in records] == [100.0, 200.0]


class TestCompare:
    def test_regression_detected_lower_is_better(self):
        rows, warnings = compare_records(
            _record(1.0, ts=1.0), _record(1.2, ts=2.0), threshold=0.10
        )
        (row,) = [r for r in rows if r["metric"] == "walk_s"]
        assert row["verdict"] == "regression"
        assert row["change"] == pytest.approx(0.2)

    def test_improvement_and_ok(self):
        base = make_record("demo", {"walk_s": 1.0, "speedup": 2.0})
        cand = make_record("demo", {"walk_s": 0.5, "speedup": 2.05})
        rows, _ = compare_records(base, cand, threshold=0.10)
        verdicts = {r["metric"]: r["verdict"] for r in rows}
        assert verdicts == {"walk_s": "improvement", "speedup": "ok"}

    def test_higher_is_better_regression(self):
        base = make_record("demo", {"speedup": 2.0})
        cand = make_record("demo", {"speedup": 1.5})
        rows, _ = compare_records(base, cand, threshold=0.10)
        assert rows[0]["verdict"] == "regression"

    def test_one_sided_metrics_warn(self):
        base = make_record("demo", {"walk_s": 1.0, "old_metric": 5.0})
        cand = make_record("demo", {"walk_s": 1.0, "new_metric": 5.0})
        rows, warnings = compare_records(base, cand, threshold=0.10)
        text = "\n".join(warnings)
        assert "old_metric" in text and "new_metric" in text

    def test_compare_needs_two_records(self, tmp_path):
        append_record(_record(1.0, ts=1.0), history_dir=tmp_path)
        with pytest.raises(ValueError):
            compare("demo", history_dir=tmp_path)

    def test_compare_latest_vs_previous_and_pinned(self, tmp_path):
        for i, v in enumerate((1.0, 2.0, 1.05)):
            append_record(_record(v, ts=float(i)), history_dir=tmp_path)
        # Default baseline: previous record (2.0 -> 1.05 = improvement).
        result = compare("demo", history_dir=tmp_path, threshold=0.10)
        assert result["ok"] and not result["regressions"]
        # Pinned to the first record: 1.0 -> 1.05 within threshold.
        pinned = compare("demo", history_dir=tmp_path, baseline_index=0,
                         threshold=0.10)
        assert pinned["ok"]
        # Tight threshold turns the same delta into a regression.
        tight = compare("demo", history_dir=tmp_path, baseline_index=0,
                        threshold=0.01)
        assert not tight["ok"] and tight["regressions"] == ["walk_s"]

    def test_format_outputs_render(self, tmp_path):
        for i, v in enumerate((1.0, 1.5)):
            append_record(_record(v, ts=float(i)), history_dir=tmp_path)
        result = compare("demo", history_dir=tmp_path)
        text = format_compare(result)
        assert "walk_s" in text and "regression" in text
        records = load_history("demo", history_dir=tmp_path)
        trend = format_history(records, metrics=["walk_s"])
        assert "walk_s" in trend


class TestCli:
    def _main(self, argv):
        from repro.cli import main

        return main(argv)

    def test_record_compare_history_verbs(self, tmp_path, capsys):
        hist = str(tmp_path / "history")
        base = ["bench", "--history-dir", hist]
        rc = self._main(base + ["record", "--bench", "walk",
                                "--metrics", '{"walk_s": 1.0}'])
        assert rc == 0
        rc = self._main(base + ["record", "--bench", "walk",
                                "--metrics", '{"walk_s": 1.3}'])
        assert rc == 0
        # 30% regression over a 10% threshold: gate closes.
        assert self._main(base + ["compare", "--bench", "walk"]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        # Identical re-run: gate opens.
        rc = self._main(base + ["record", "--bench", "walk",
                                "--metrics", '{"walk_s": 1.3}'])
        assert rc == 0
        assert self._main(base + ["compare", "--bench", "walk"]) == 0
        assert self._main(base + ["history", "--bench", "walk"]) == 0
        out = capsys.readouterr().out
        assert "walk_s" in out

    def test_record_rejects_bad_metrics_json(self, tmp_path):
        rc = self._main([
            "bench", "--history-dir", str(tmp_path), "record",
            "--bench", "walk", "--metrics", "{broken",
        ])
        assert rc == 2

    def test_history_without_records_fails(self, tmp_path):
        rc = self._main([
            "bench", "--history-dir", str(tmp_path), "history",
            "--bench", "nothing",
        ])
        assert rc == 1
