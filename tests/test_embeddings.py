"""SGNS embeddings and temporal link prediction."""

import numpy as np
import pytest

from repro.embeddings import (
    auc_score,
    temporal_link_prediction,
    time_split,
    train_sgns,
)
from repro.embeddings.sgns import _pairs_from_walks
from repro.graph.edge_stream import EdgeStream
from repro.graph.generators import temporal_powerlaw
from repro.walks.apps import exponential_walk, unbiased_walk
from repro.walks.walker import WalkPath


def make_walks(seqs):
    return [WalkPath(hops=[(v, None if i == 0 else float(i)) for i, v in enumerate(s)])
            for s in seqs]


class TestPairExtraction:
    def test_window_pairs(self):
        walks = make_walks([[0, 1, 2, 3]])
        centers, contexts, occ = _pairs_from_walks(walks, window=1)
        pairs = set(zip(centers.tolist(), contexts.tolist()))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)}
        assert sorted(occ.tolist()) == [0, 1, 2, 3]

    def test_window_two(self):
        walks = make_walks([[0, 1, 2]])
        centers, _, _ = _pairs_from_walks(walks, window=2)
        assert centers.size == 6  # every ordered pair

    def test_single_vertex_walk_no_pairs(self):
        centers, contexts, _ = _pairs_from_walks(make_walks([[5]]), window=2)
        assert centers.size == 0


class TestTrainSGNS:
    def test_shapes_and_determinism(self):
        walks = make_walks([[0, 1, 2, 3, 0, 1]] * 5)
        a = train_sgns(walks, num_vertices=4, dim=8, epochs=2, seed=3)
        b = train_sgns(walks, num_vertices=4, dim=8, epochs=2, seed=3)
        assert a.vectors.shape == (4, 8)
        assert np.array_equal(a.vectors, b.vectors)
        assert a.pair_count == b.pair_count > 0

    def test_clusters_separate(self):
        """Two disjoint cliques of walk activity → higher intra similarity."""
        left = [[0, 1, 2, 0, 2, 1] for _ in range(20)]
        right = [[3, 4, 5, 3, 5, 4] for _ in range(20)]
        emb = train_sgns(make_walks(left + right), num_vertices=6, dim=16,
                         epochs=8, seed=0)
        intra = emb.similarity(0, 1)
        inter = emb.similarity(0, 4)
        assert intra > inter

    def test_most_similar_excludes_self(self):
        walks = make_walks([[0, 1, 2, 0, 1, 2]] * 10)
        emb = train_sgns(walks, num_vertices=3, dim=8, epochs=3, seed=1)
        top = emb.most_similar(0, k=2)
        assert all(v != 0 for v, _ in top)

    def test_validation(self):
        walks = make_walks([[0, 1]])
        with pytest.raises(ValueError):
            train_sgns(walks, num_vertices=0)
        with pytest.raises(ValueError):
            train_sgns(walks, num_vertices=2, dim=0)
        with pytest.raises(ValueError):
            train_sgns(make_walks([[0]]), num_vertices=1)  # no pairs
        with pytest.raises(ValueError):
            train_sgns(walks, num_vertices=1)  # vertex 1 out of range

    def test_zero_negatives_allowed(self):
        walks = make_walks([[0, 1, 0, 1]] * 5)
        emb = train_sgns(walks, num_vertices=2, negatives=0, epochs=2, seed=0)
        assert np.isfinite(emb.vectors).all()


class TestAUC:
    def test_perfect_separation(self):
        assert auc_score([2.0, 3.0], [0.0, 1.0]) == 1.0

    def test_inverted(self):
        assert auc_score([0.0], [1.0]) == 0.0

    def test_chance(self):
        rng = np.random.default_rng(0)
        pos = rng.normal(size=4000)
        neg = rng.normal(size=4000)
        assert abs(auc_score(pos, neg) - 0.5) < 0.03

    def test_ties_count_half(self):
        assert auc_score([1.0], [1.0]) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            auc_score([], [1.0])


class TestTimeSplit:
    def test_split_sizes_and_order(self):
        stream = EdgeStream.from_edges([(0, 1, float(t)) for t in range(10)])
        train, test = time_split(stream, 0.7)
        assert len(train) == 7 and len(test) == 3
        assert train.time.max() <= test.time.min()

    def test_bad_fraction(self):
        stream = EdgeStream.from_edges([(0, 1, 1.0), (1, 2, 2.0)])
        with pytest.raises(ValueError):
            time_split(stream, 1.0)
        with pytest.raises(ValueError):
            time_split(stream, 0.01)


class TestLinkPrediction:
    @pytest.fixture(scope="class")
    def stream(self):
        return temporal_powerlaw(80, 4000, alpha=0.9, time_horizon=300.0, seed=5)

    def test_end_to_end_beats_chance(self, stream):
        result = temporal_link_prediction(
            stream, exponential_walk(scale=60.0), dim=24,
            walks_per_vertex=6, epochs=4, seed=0,
        )
        assert result.auc > 0.55  # genuinely above chance
        assert result.num_test_edges > 0
        assert "auc" in repr(result)

    def test_deterministic(self, stream):
        a = temporal_link_prediction(stream, unbiased_walk(), epochs=1,
                                     walks_per_vertex=2, seed=9)
        b = temporal_link_prediction(stream, unbiased_walk(), epochs=1,
                                     walks_per_vertex=2, seed=9)
        assert a.auc == b.auc
