"""Every shipped example must run cleanly end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, monkeypatch, capsys):
    # Examples tuned for humans can be slow; shrink their knobs where the
    # module exposes them, otherwise just run as-is.
    monkeypatch.setattr(sys, "argv", [str(script)])
    namespace = runpy.run_path(str(script), run_name="not_main")
    assert "main" in namespace
    if script.stem == "streaming_updates":
        # The rebuild-vs-incremental demo at full size takes seconds; the
        # streaming session alone covers the example's code path.
        namespace["streaming_session"]()
        namespace["incremental_vs_rebuild"](degree=5_000, batch=200)
    else:
        namespace["main"]()
    out = capsys.readouterr().out
    assert out.strip(), f"{script.stem} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "commute_network", "ecommerce_recommendation",
            "streaming_updates", "out_of_core"} <= names
