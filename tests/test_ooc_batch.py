"""Batched out-of-core engine: the frontier fast path over the TrunkStore.

Covers the tentpole's correctness contract: the batched engine must keep
the scalar ``tea-ooc`` sampling distribution (chi-squared at a hub
vertex), stay deterministic and cache-oblivious in its draws, produce
valid temporal paths, coalesce backing reads, and conserve prefetch
accounting (``issued == hits + wasted + in_flight``) all the way out to
the Prometheus exporter.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.builder import build_pat
from repro.core.outofcore import TrunkStore, coalesce_runs
from repro.core.weights import WeightModel
from repro.engines import (
    BatchTeaOutOfCoreEngine,
    TeaOutOfCoreEngine,
    Workload,
)
from repro.graph.validate import is_temporal_path
from repro.sampling.counters import CostCounters
from repro.telemetry import MetricsRegistry
from repro.telemetry.exporters import to_prometheus
from repro.walks.apps import exponential_walk, temporal_node2vec
from tests.conftest import chisquare_ok


class TestCoalesceRuns:
    def test_adjacent_and_overlapping_merge(self):
        runs = list(coalesce_runs([(0, 4, "a"), (4, 8, "b"), (6, 10, "c")]))
        assert runs == [(0, 10, ["a", "b", "c"])]

    def test_disjoint_stay_separate(self):
        runs = list(coalesce_runs([(0, 2, 0), (5, 7, 1)]))
        assert runs == [(0, 2, [0]), (5, 7, [1])]

    def test_empty(self):
        assert list(coalesce_runs([])) == []


class TestReadBatch:
    @pytest.fixture
    def store(self, medium_graph, tmp_path):
        weights = WeightModel("exponential", scale=20.0).compute(medium_graph)
        pat = build_pat(medium_graph, weights, trunk_size=8)
        return TrunkStore.persist(pat, tmp_path / "s", cache_bytes=1 << 20).open()

    def test_blocks_match_scalar_reads(self, store):
        los = np.array([0, 8, 8, 16, 3], dtype=np.int64)
        his = np.array([8, 16, 16, 24, 11], dtype=np.int64)
        blocks, inverse = store.read_batch("c", los, his, CostCounters())
        for i in range(los.size):
            expected = np.array(store._c[los[i]:his[i]])
            np.testing.assert_array_equal(blocks[inverse[i]], expected)

    def test_duplicates_collapse_and_runs_coalesce(self, store):
        counters = CostCounters()
        los = np.array([0, 0, 8, 16], dtype=np.int64)
        his = np.array([8, 8, 16, 24], dtype=np.int64)
        before = store.read_ops
        blocks, inverse = store.read_batch("c", los, his, counters)
        # Three adjacent unique ranges coalesce into ONE backing read.
        assert store.read_ops == before + 1
        assert len(blocks) == 3
        assert inverse.tolist() == [0, 0, 1, 2]

    def test_pa_region_returns_tuples(self, store):
        blocks, inverse = store.read_batch(
            "pa", np.array([0, 8]), np.array([8, 16]), None
        )
        prob, alias = blocks[inverse[0]]
        np.testing.assert_array_equal(prob, np.array(store._prob[0:8]))
        np.testing.assert_array_equal(alias, np.array(store._alias[0:8]))


class TestDistributionEquivalence:
    def test_first_hop_matches_exact(self, small_graph):
        """Batched ooc next-hop counts fit the exact weight distribution
        (same harness as the parallel-engine equivalence test)."""
        spec = exponential_walk(scale=15.0)
        v = int(np.argmax(small_graph.degrees()))
        d = small_graph.out_degree(v)
        weights = spec.weight_model.compute(small_graph)
        lo = small_graph.indptr[v]
        nbrs = small_graph.nbr[lo : lo + d]
        dests = np.unique(nbrs)
        w_by_dest = np.array(
            [weights[lo : lo + d][nbrs == u].sum() for u in dests]
        )
        probs = w_by_dest / w_by_dest.sum()

        engine = BatchTeaOutOfCoreEngine(small_graph, spec, trunk_size=8)
        wl = Workload(walks_per_vertex=20000, max_length=1, start_vertices=[v])
        result = engine.run(wl, seed=5)
        first = [p.hops[1][0] for p in result.paths if p.num_edges >= 1]
        index_of = {int(u): j for j, u in enumerate(dests)}
        counts = np.zeros(dests.size)
        for u in first:
            counts[index_of[int(u)]] += 1
        assert counts.sum() == 20000
        assert chisquare_ok(counts, probs)


class TestParityAndDeterminism:
    def test_step_parity_at_length_one(self, small_graph):
        """At max_length=1 the step count is start-determined, so the
        engines must agree exactly whatever their RNG consumption."""
        wl = Workload(walks_per_vertex=3, max_length=1)
        scalar = TeaOutOfCoreEngine(small_graph, exponential_walk(scale=15.0))
        batch = BatchTeaOutOfCoreEngine(
            small_graph, exponential_walk(scale=15.0)
        )
        s = scalar.run(wl, seed=2, record_paths=False).counters.steps
        b = batch.run(wl, seed=2, record_paths=False).counters.steps
        assert s == b

    def test_deterministic_at_fixed_seed(self, small_graph):
        wl = Workload(walks_per_vertex=2, max_length=20)
        runs = [
            BatchTeaOutOfCoreEngine(
                small_graph, exponential_walk(scale=15.0)
            ).run(wl, seed=11)
            for _ in range(2)
        ]
        assert [w.hops for w in runs[0].paths] == [w.hops for w in runs[1].paths]

    def test_draws_oblivious_to_cache_and_prefetch(self, small_graph):
        """Neither the cache nor the prefetcher consumes sampling RNG,
        so every configuration must yield identical paths."""
        wl = Workload(walks_per_vertex=2, max_length=20)
        configs = [
            {"cache_bytes": 0, "prefetch": False},
            {"cache_bytes": 1 << 20, "prefetch": False},
            {"cache_bytes": 1 << 20, "prefetch": True},
        ]
        paths = []
        for cfg in configs:
            result = BatchTeaOutOfCoreEngine(
                small_graph, exponential_walk(scale=15.0), **cfg
            ).run(wl, seed=4)
            paths.append([w.hops for w in result.paths])
        assert paths[0] == paths[1] == paths[2]

    def test_coalescing_beats_scalar_read_ops(self, medium_graph, tmp_path):
        wl = Workload(walks_per_vertex=2, max_length=30)
        spec = exponential_walk(scale=20.0)
        scalar = TeaOutOfCoreEngine(
            medium_graph, spec, trunk_size=8,
            storage_dir=str(tmp_path / "s"), cache_bytes=1 << 20,
        )
        scalar.run(wl, seed=6, record_paths=False)
        batch = BatchTeaOutOfCoreEngine(
            medium_graph, spec, trunk_size=8,
            storage_dir=str(tmp_path / "b"), cache_bytes=1 << 20,
        )
        batch.run(wl, seed=6, record_paths=False)
        assert batch.index.store.read_ops < scalar.index.store.read_ops


class TestTemporalValidity:
    def test_node2vec_paths_are_temporal(self, small_graph):
        engine = BatchTeaOutOfCoreEngine(
            small_graph, temporal_node2vec(p=0.5, q=2.0, scale=15.0),
            trunk_size=8,
        )
        result = engine.run(Workload(walks_per_vertex=2, max_length=15), seed=3)
        assert result.counters.steps > 0
        for path in result.paths:
            assert is_temporal_path(small_graph, path.hops)


class TestPrefetchTelemetry:
    @pytest.fixture
    def ran_engine(self, medium_graph, tmp_path):
        engine = BatchTeaOutOfCoreEngine(
            medium_graph, exponential_walk(scale=20.0), trunk_size=8,
            storage_dir=str(tmp_path), cache_bytes=1 << 20, prefetch=True,
        )
        engine.run(Workload(walks_per_vertex=2, max_length=40), seed=1,
                   record_paths=False)
        return engine

    def test_conservation(self, ran_engine):
        store = ran_engine.index.store
        assert store.prefetch_issued > 0
        assert store.prefetch_issued == (
            store.prefetch_hits + store.prefetch_wasted
            + store.prefetch_in_flight
        )

    def test_registry_and_prometheus_visibility(self, ran_engine):
        store = ran_engine.index.store
        registry = MetricsRegistry()
        ran_engine.publish_telemetry(registry)
        issued = registry.counter_value("prefetch.issued")
        assert issued == store.prefetch_issued
        assert issued == (
            registry.counter_value("prefetch.hits")
            + registry.counter_value("prefetch.wasted")
            + registry.gauge_value("prefetch.in_flight")
        )
        assert registry.counter_value("ooc.read_ops") == store.read_ops
        assert registry.gauge_value("ooc.io_overlap_seconds") is not None
        text = to_prometheus(registry)
        for name in ("tea_prefetch_issued", "tea_prefetch_hits",
                     "tea_prefetch_wasted", "tea_ooc_read_ops",
                     "tea_cache_bytes_served"):
            assert name in text, name

    def test_prefetch_off_hides_prefetch_metrics(self, medium_graph, tmp_path):
        engine = BatchTeaOutOfCoreEngine(
            medium_graph, exponential_walk(scale=20.0), trunk_size=8,
            storage_dir=str(tmp_path), cache_bytes=1 << 20, prefetch=False,
        )
        engine.run(Workload(walks_per_vertex=1, max_length=10), seed=1,
                   record_paths=False)
        registry = MetricsRegistry()
        engine.publish_telemetry(registry)
        assert registry.counter_value("prefetch.issued") == 0
        assert registry.counter_value("ooc.read_ops") > 0


class TestCli:
    def test_walk_batch_engine_with_flags(self, capsys):
        rc = main([
            "walk", "--dataset", "tiny", "--app", "exponential",
            "--engine", "tea-ooc-batch", "--length", "10",
            "--max-walks", "20", "--stats", "--cache-bytes", "65536",
            "--ooc-trunk-size", "4", "--prefetch", "on",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "prefetch.issued" in out
        assert "ooc.read_ops" in out
        assert "cache.bytes_served" in out

    def test_walk_scalar_engine_cache_flag(self, capsys):
        rc = main([
            "walk", "--dataset", "tiny", "--app", "exponential",
            "--engine", "tea-ooc", "--length", "10", "--max-walks", "20",
            "--cache-bytes", "65536", "--ooc-trunk-size", "4",
        ])
        assert rc == 0
        assert "steps:" in capsys.readouterr().out
