"""Auxiliary index: O(1) trunk lookup vs on-the-fly decomposition."""

import numpy as np
import pytest

from repro.core.aux_index import AuxiliaryIndex, _popcount
from repro.core.trunks import binary_decompose


class TestPopcount:
    def test_matches_python(self):
        values = np.array([0, 1, 2, 3, 7, 8, 255, 256, 2**40 + 5], dtype=np.int64)
        expected = np.array([bin(int(v)).count("1") for v in values])
        assert np.array_equal(_popcount(values), expected)


class TestLookup:
    @pytest.mark.parametrize("size", list(range(1, 130)) + [255, 256, 1000])
    def test_matches_decomposition(self, size):
        index = AuxiliaryIndex(max_size=1024)
        levels, cuts = index.lookup(size)
        blocks = binary_decompose(size)
        assert list(levels) == [k for k, _ in blocks]
        assert list(cuts) == [off + (1 << k) for k, off in blocks]

    def test_paper_example(self):
        """Section 3.4: size 7 → trunks of sizes 4, 2, 1; positions 0, 4, 6."""
        index = AuxiliaryIndex(max_size=16)
        levels, cuts = index.lookup(7)
        assert list(levels) == [2, 1, 0]
        assert list(cuts) == [4, 6, 7]

    def test_fallback_beyond_cap(self):
        index = AuxiliaryIndex(max_size=1 << 22, precompute_cap=64)
        assert index.max_size == 64
        levels, cuts = index.lookup(1000)
        blocks = binary_decompose(1000)
        assert list(levels) == [k for k, _ in blocks]
        assert index.fallback_lookups == 1

    def test_entry_count_is_total_popcount(self):
        index = AuxiliaryIndex(max_size=100)
        expected = sum(bin(s).count("1") for s in range(1, 101))
        assert index.levels.size == expected

    def test_empty_index(self):
        index = AuxiliaryIndex(max_size=0)
        assert index.levels.size == 0
        levels, cuts = index.lookup(5)  # falls back
        assert list(cuts)[-1] == 5

    def test_nbytes_positive(self):
        assert AuxiliaryIndex(max_size=64).nbytes() > 0

    def test_views_are_readonly(self):
        index = AuxiliaryIndex(max_size=8)
        levels, _ = index.lookup(3)
        with pytest.raises(ValueError):
            levels[0] = 9
