"""Documentation stays executable and accurate."""

import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_runs(self, tmp_path):
        """The README's quickstart must execute as written."""
        readme = (ROOT / "README.md").read_text()
        blocks = python_blocks(readme)
        assert blocks, "README lost its quickstart code block"
        script = tmp_path / "quickstart_doc.py"
        script.write_text(blocks[0])
        proc = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "engine" in proc.stdout  # result.summary() printed

    def test_documented_files_exist(self):
        readme = (ROOT / "README.md").read_text()
        for rel in re.findall(r"python (examples/\w+\.py)", readme):
            assert (ROOT / rel).exists(), rel
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/architecture.md",
                    "docs/api.md"):
            assert doc.split("`")[0]  # trivial guard
            assert (ROOT / doc).exists(), doc

    def test_module_table_entries_importable(self):
        """Every `repro.*` module the README's table cites must import."""
        import importlib

        readme = (ROOT / "README.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", readme))
        assert modules
        for name in sorted(modules):
            importlib.import_module(name)


class TestDesignDoc:
    def test_bench_targets_listed_in_design_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for rel in re.findall(r"`(benchmarks/test_\w+\.py)`", design):
            assert (ROOT / rel).exists(), rel

    def test_paper_confirmation_present(self):
        design = (ROOT / "DESIGN.md").read_text()
        assert "correct paper" in design
        assert "3552326.3567491" in design


class TestExperimentsDoc:
    def test_artifacts_referenced_are_generated(self):
        """Every bench_results artifact EXPERIMENTS.md cites has a
        generator among the benchmark files."""
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        bench_sources = "\n".join(
            p.read_text() for p in (ROOT / "benchmarks").glob("test_*.py")
        )
        for name in re.findall(r"`(\w+)\.txt`", experiments):
            if name in ("test_output", "bench_output"):  # repo-level outputs
                continue
            assert f'"{name}"' in bench_sources, f"no bench writes {name}.txt"
