"""Incremental HPAT: streaming appends, carries, equivalence to rebuild."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalHPAT, VertexIncrementalHPAT
from repro.core.weights import WeightModel
from repro.exceptions import EmptyCandidateSetError, NotSupportedError
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import make_rng
from tests.conftest import chisquare_ok


def vertex_with_batches(batches, model=None) -> VertexIncrementalHPAT:
    vert = VertexIncrementalHPAT(model or WeightModel("linear_rank"))
    for dst, times in batches:
        vert.append_batch(np.asarray(dst), np.asarray(times, dtype=float))
    return vert


class TestAppend:
    def test_basic_append(self):
        vert = vertex_with_batches([([1, 2, 3], [1.0, 2.0, 3.0])])
        assert vert.num_edges == 3
        dst, times, _ = vert.edges_desc()
        assert list(dst) == [3, 2, 1]
        assert list(times) == [3.0, 2.0, 1.0]

    def test_empty_batch_noop(self):
        vert = vertex_with_batches([([], [])])
        assert vert.num_edges == 0

    def test_out_of_order_batch_rejected(self):
        vert = vertex_with_batches([([1], [5.0])])
        with pytest.raises(NotSupportedError):
            vert.append_batch(np.array([2]), np.array([3.0]))

    def test_unsorted_batch_rejected(self):
        vert = VertexIncrementalHPAT(WeightModel("uniform"))
        with pytest.raises(NotSupportedError):
            vert.append_batch(np.array([1, 2]), np.array([5.0, 3.0]))

    def test_equal_times_allowed(self):
        vert = vertex_with_batches([([1], [5.0]), ([2], [5.0])])
        assert vert.num_edges == 2
        dst, _, _ = vert.edges_desc()
        assert list(dst) == [2, 1]  # newer stream position first

    def test_carry_merge_bounds_blocks(self):
        """Equal-size appends carry like a binary counter: O(log) blocks."""
        vert = VertexIncrementalHPAT(WeightModel("uniform"))
        for i in range(64):
            vert.append_batch(np.array([i]), np.array([float(i)]))
        assert vert.num_blocks() <= 7  # 64 ones → few blocks
        assert vert.num_edges == 64

    def test_amortised_merge_cost(self):
        """Total re-indexed edges stay O(n log n) under single appends."""
        vert = VertexIncrementalHPAT(WeightModel("uniform"))
        n = 256
        for i in range(n):
            vert.append_batch(np.array([i]), np.array([float(i)]))
        assert vert.merged_edges <= 4 * n * np.log2(n)

    def test_big_batch_after_small_absorbs(self):
        vert = vertex_with_batches(
            [([0], [0.0]), ([1], [1.0]), (list(range(2, 50)), list(range(2, 50)))]
        )
        assert vert.num_blocks() == 1


class TestCandidateCount:
    def test_matches_static_graph(self):
        rng = make_rng(0)
        times = np.sort(rng.uniform(0, 100, 64))
        vert = vertex_with_batches(
            [(np.arange(20), times[:20]), (np.arange(20, 64), times[20:])]
        )
        stream = EdgeStream(np.zeros(64, dtype=int), np.arange(64), times)
        graph = TemporalGraph.from_stream(stream)
        for t in [None, -1.0, 0.0, 50.0, 99.0, 200.0]:
            assert vert.candidate_count(t) == graph.candidate_count(0, t), t

    def test_strictness(self):
        vert = vertex_with_batches([([1, 2], [1.0, 2.0])])
        assert vert.candidate_count(1.0) == 1
        assert vert.candidate_count(0.99) == 2


class TestSamplingEquivalence:
    """Incremental structure ≡ from-scratch HPAT, for any batch split."""

    @pytest.mark.parametrize("splits", [[64], [1] * 64, [5, 59], [17, 30, 17], [63, 1]])
    def test_distribution_matches_exact(self, splits):
        rng = make_rng(42)
        n = sum(splits)
        times = np.sort(rng.uniform(0, 50, n))
        model = WeightModel("exponential", scale=10.0)
        batches = []
        pos = 0
        for size in splits:
            batches.append((np.arange(pos, pos + size), times[pos : pos + size]))
            pos += size
        vert = vertex_with_batches(batches, model)
        _, t_desc, w_desc = vert.edges_desc()
        for s in [1, n // 3, n]:
            if s < 1:
                continue
            probs = w_desc[:s] / w_desc[:s].sum()
            counts = np.zeros(n)
            for _ in range(12000):
                dst, _ = vert.sample(s, rng)
                counts[dst - 0] += 1
            # Map destinations back to time-desc positions: dst == index
            # into ascending order, so position = n - 1 - dst.
            counts_desc = counts[::-1][: s + 0]
            # All mass must be within the candidate prefix.
            assert counts[::-1][s:].sum() == 0
            assert chisquare_ok(counts_desc[:s], probs), (splits, s)

    def test_invalid_candidate_sizes(self):
        vert = vertex_with_batches([([1], [1.0])])
        with pytest.raises(EmptyCandidateSetError):
            vert.sample(0, make_rng(0))
        with pytest.raises(EmptyCandidateSetError):
            vert.sample(2, make_rng(0))


class TestGraphLevel:
    def test_apply_batches_matches_static(self, small_graph):
        model = WeightModel("linear_rank")
        inc = IncrementalHPAT(model)
        stream = small_graph.to_stream()
        for batch in stream.batches(97):
            inc.apply_batch(batch)
        assert inc.num_edges == small_graph.num_edges
        for v in range(small_graph.num_vertices):
            assert inc.candidate_count(v, None) == small_graph.out_degree(v)
            assert inc.candidate_count(v, 50.0) == small_graph.candidate_count(v, 50.0)

    def test_init_from_graph(self, small_graph):
        inc = IncrementalHPAT(WeightModel("uniform"), graph=small_graph)
        assert inc.num_edges == small_graph.num_edges

    def test_sample_unknown_vertex(self):
        inc = IncrementalHPAT(WeightModel("uniform"))
        with pytest.raises(EmptyCandidateSetError):
            inc.sample(3, 1, make_rng(0))

    def test_nbytes_grows(self, small_graph):
        inc = IncrementalHPAT(WeightModel("uniform"))
        stream = small_graph.to_stream()
        sizes = []
        for batch in stream.batches(300):
            inc.apply_batch(batch)
            sizes.append(inc.nbytes())
        assert sizes == sorted(sizes)
        assert sizes[-1] > 0


class TestWeightKinds:
    @pytest.mark.parametrize(
        "kind,scale", [("uniform", 1.0), ("linear_rank", 1.0),
                       ("linear_time", 1.0), ("exponential", 10.0)]
    )
    def test_weights_positive_and_monotone(self, kind, scale):
        rng = make_rng(1)
        times = np.sort(rng.uniform(0, 40, 30))
        vert = vertex_with_batches(
            [(np.arange(15), times[:15]), (np.arange(15, 30), times[15:])],
            WeightModel(kind, scale),
        )
        _, _, w = vert.edges_desc()
        assert np.all(w > 0)
        if kind != "uniform":
            assert np.all(w[:-1] >= w[1:] - 1e-12)  # newest-first ⇒ non-increasing
