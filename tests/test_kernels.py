"""Fused sampling-kernel backends, β fallbacks, and factorized decay.

Covers the kernel-fusion PR end to end: backend registry semantics,
bit-parity between the fused backends and the preserved pre-fusion
kernel, the uniform-block draw contract they rely on, the hardened /
vectorised β code paths, scalar-vs-fused distribution equivalence under
``exponential_decay``, and the BINGO-style radix forest.
"""

import numpy as np
import pytest

import repro.engines.batch as batch_mod
from repro.core import builder
from repro.core.incremental import IncrementalHPAT, VertexIncrementalHPAT
from repro.core.weights import WeightModel
from repro.engines import TeaEngine, Workload
from repro.engines.batch import BatchTeaEngine, hpat_sample_batch
from repro.graph.validate import is_temporal_path
from repro.kernels import (
    KernelBackend,
    KernelScratch,
    available_backends,
    backend_fallback_note,
    numba_available,
    resolve_backend,
    sample_batch,
)
from repro.kernels.decay import DecayRadixForest
from repro.rng import GeneratorLanes, LaneRng, make_rng
from repro.sampling.counters import CostCounters
from repro.walks.apps import temporal_node2vec
from repro.walks.spec import WalkSpec
from tests.conftest import chisquare_ok

NON_LEGACY = [n for n in available_backends() if n != "legacy"]


@pytest.fixture(scope="module")
def skewed_index(request):
    graph = request.getfixturevalue("medium_graph")
    pre = builder.preprocess(graph, WeightModel("exponential", scale=4.0))
    return pre.index


def _queries(index, n, seed):
    deg = np.diff(index.indptr)
    rng = np.random.default_rng(seed)
    lively = np.flatnonzero(deg > 0)
    vs = lively[rng.integers(0, lively.size, size=n)].astype(np.int64)
    ss = 1 + (deg[vs] * rng.random(n)).astype(np.int64)
    return vs, ss


class TestBackendRegistry:
    def test_available_backends_always_has_numpy_and_legacy(self):
        names = available_backends()
        assert "numpy" in names and "legacy" in names

    def test_resolve_passthrough_and_auto(self):
        backend = resolve_backend("numpy")
        assert isinstance(backend, KernelBackend)
        assert resolve_backend(backend) is backend
        auto = resolve_backend("auto")
        assert auto.name == ("numba" if numba_available() else "numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_numba_request_degrades_cleanly_when_absent(self):
        resolved = resolve_backend("numba")
        if numba_available():
            assert resolved.name == "numba"
        else:
            assert resolved.name == "numpy"
            note = backend_fallback_note()
            assert note is not None and "numba" in note


class TestUniformBlockContract:
    """``uniform_block(lanes, k)`` ≡ k successive ``uniform`` calls.

    The driver draws the two alias uniforms as one block; the legacy
    kernel draws them as two calls. Backend bit-parity rests on these
    being the same numbers for both draw sources.
    """

    def test_lane_rng(self):
        lanes = np.arange(257, dtype=np.int64)
        a = LaneRng(np.arange(257, dtype=np.uint64) + 5)
        b = LaneRng(np.arange(257, dtype=np.uint64) + 5)
        block = a.uniform_block(lanes, 2)
        assert np.array_equal(block[0], b.uniform(lanes))
        assert np.array_equal(block[1], b.uniform(lanes))

    def test_generator_lanes(self):
        lanes = np.arange(257, dtype=np.int64)
        a = GeneratorLanes(np.random.default_rng(9))
        b = GeneratorLanes(np.random.default_rng(9))
        block = a.uniform_block(lanes, 2)
        assert np.array_equal(block[0], b.uniform(lanes))
        assert np.array_equal(block[1], b.uniform(lanes))


@pytest.mark.parametrize("name", NON_LEGACY)
class TestBackendParity:
    """Every fused backend is bit-identical to the pre-fusion kernel."""

    def test_lane_rng_parity_across_sizes(self, skewed_index, name):
        legacy = resolve_backend("legacy")
        backend = resolve_backend(name)
        scratch = KernelScratch()  # deliberately reused across sizes
        for n in (1, 17, 300, 5000):
            vs, ss = _queries(skewed_index, n, seed=n)
            lanes = np.arange(n, dtype=np.int64)
            ref = sample_batch(
                legacy, skewed_index, vs, ss, None,
                draw=LaneRng(lanes.astype(np.uint64) + 3), lanes=lanes,
            )
            got = sample_batch(
                backend, skewed_index, vs, ss, None,
                draw=LaneRng(lanes.astype(np.uint64) + 3), lanes=lanes,
                scratch=scratch,
            )
            # The result is a scratch view: compare before the next call.
            assert np.array_equal(ref, got), f"{name} diverged at n={n}"

    def test_generator_parity(self, skewed_index, name):
        legacy = resolve_backend("legacy")
        backend = resolve_backend(name)
        vs, ss = _queries(skewed_index, 2000, seed=1)
        ref = sample_batch(legacy, skewed_index, vs, ss, make_rng(4))
        got = sample_batch(backend, skewed_index, vs, ss, make_rng(4))
        assert np.array_equal(ref, got)

    def test_counters_match_legacy(self, skewed_index, name):
        backend = resolve_backend(name)
        vs, ss = _queries(skewed_index, 500, seed=2)
        c_legacy, c_backend = CostCounters(), CostCounters()
        sample_batch(resolve_backend("legacy"), skewed_index, vs, ss,
                     make_rng(0), c_legacy)
        sample_batch(backend, skewed_index, vs, ss, make_rng(0), c_backend)
        assert c_backend.binary_search_probes == c_legacy.binary_search_probes
        assert c_backend.alias_draws == c_legacy.alias_draws


class TestEngineBackendParity:
    """Whole walk runs are backend-independent (hop for hop)."""

    @pytest.mark.parametrize("name", [n for n in NON_LEGACY] + ["legacy"])
    def test_node2vec_walks_identical(self, medium_graph, name):
        spec = temporal_node2vec(p=2.0, q=0.5, scale=8.0)
        workload = Workload(walks_per_vertex=1, max_length=20, max_walks=150)
        ref = BatchTeaEngine(medium_graph, spec, kernel_backend="numpy").run(
            workload, seed=11, record_paths=True)
        got = BatchTeaEngine(medium_graph, spec, kernel_backend=name).run(
            workload, seed=11, record_paths=True)
        assert [tuple(p.vertices) for p in ref.paths] == \
            [tuple(p.vertices) for p in got.paths]


class TestScalarFusedDecayEquivalence:
    """Satellite: scalar TEA ≡ fused kernel under ``exponential_decay``."""

    @pytest.mark.parametrize("name", [n for n in NON_LEGACY] + ["legacy"])
    def test_distribution_matches_scalar(self, medium_graph, name):
        spec = WalkSpec(
            name="decay",
            weight_model=WeightModel("exponential_decay", scale=25.0),
        )
        engine = BatchTeaEngine(medium_graph, spec, kernel_backend=name)
        engine.prepare()
        deg = np.diff(medium_graph.indptr)
        v = int(np.argmax(deg))
        s = int(deg[v])
        weights = spec.weight_model.compute(medium_graph)
        lo = medium_graph.indptr[v]
        probs = weights[lo:lo + s] / weights[lo:lo + s].sum()

        n = 20000
        draws = hpat_sample_batch(
            engine.index, np.full(n, v), np.full(n, s), make_rng(2),
            CostCounters(), backend=engine.kernel,
        )
        assert chisquare_ok(np.bincount(draws, minlength=s).astype(float),
                            probs), f"fused[{name}] off-distribution"

        scalar = TeaEngine(medium_graph, spec)
        scalar.prepare()
        rng = make_rng(3)
        counters = CostCounters()
        scalar_draws = np.array([
            scalar.index.sample(v, s, rng, counters) for _ in range(n)
        ])
        assert chisquare_ok(
            np.bincount(scalar_draws, minlength=s).astype(float), probs
        ), "scalar TEA off-distribution"


class TestBetaEmptyKeys:
    """Satellite: ``_beta_batch`` survives a degenerate static adjacency."""

    def test_empty_keys_direct(self, medium_graph):
        spec = temporal_node2vec(p=2.0, q=0.25, scale=8.0)
        engine = BatchTeaEngine(medium_graph, spec)
        engine.prepare()
        engine._static_keys = np.zeros(0, dtype=np.int64)
        prev = np.array([0, 1, 2, 3], dtype=np.int64)
        cand = np.array([1, 1, 2, 9], dtype=np.int64)  # mixed ==/!= prev
        out = engine._beta_batch(prev, cand)  # pre-fix: IndexError
        q = spec.dynamic_parameter.q
        p = spec.dynamic_parameter.p
        expected = np.where(cand == prev, 1.0 / p, 1.0 / q)
        np.testing.assert_allclose(out, expected)

    def test_walk_with_empty_static_keys(self, medium_graph):
        # The from_prepared worker path can legitimately hand the engine
        # an empty key array (e.g. a spec-restricted empty adjacency);
        # node2vec walks must still run, scoring every candidate 1/q.
        spec = temporal_node2vec(p=2.0, q=0.5, scale=8.0)
        donor = BatchTeaEngine(medium_graph, spec)
        donor.prepare()
        engine = BatchTeaEngine.from_prepared(
            medium_graph, spec, donor.index, donor.candidate_sizes,
            static_keys=np.zeros(0, dtype=np.int64),
        )
        result = engine.run(Workload(max_length=10, max_walks=60), seed=2,
                            record_paths=True)
        assert result.num_walks == 60
        for path in result.paths:
            assert is_temporal_path(medium_graph, path.hops)


class TestBetaFallbackVectorised:
    """Satellite: the budget-exhaustion fallback is exact and batched."""

    def _engine(self, graph, q=0.25):
        spec = temporal_node2vec(p=2.0, q=q, scale=8.0)
        engine = BatchTeaEngine(graph, spec)
        engine.prepare()
        return engine, spec

    def test_fallback_distribution(self, medium_graph):
        engine, spec = self._engine(medium_graph)
        g = medium_graph
        deg = np.diff(g.indptr)
        v = int(np.argmax(deg))
        s = int(deg[v])
        prev = int(g.nbr[g.indptr[v]])  # a real neighbor as prev vertex
        beta = spec.dynamic_parameter

        n = 20000
        vs = np.full(n, v, dtype=np.int64)
        ss = np.full(n, s, dtype=np.int64)
        prevs = np.full(n, prev, dtype=np.int64)
        lanes = np.arange(n, dtype=np.int64)
        counters = CostCounters()
        draws = engine._beta_fallback_batch(
            vs, ss, prevs, beta, LaneRng(lanes.astype(np.uint64)), lanes,
            counters,
        )
        w = engine._candidate_weights(v, s).copy()
        cand = g.nbr[g.indptr[v]:g.indptr[v] + s]
        bvals = np.array([beta(g, prev, int(c)) for c in cand])
        probs = w * bvals
        probs /= probs.sum()
        assert chisquare_ok(np.bincount(draws, minlength=s).astype(float),
                            probs)
        assert counters.edges_evaluated >= n * s  # exact scans accounted

    def test_fallback_chunk_invariant(self, medium_graph):
        # Per-lane prefix sums must not depend on which other lanes share
        # the batch: splitting one fallback population into two calls
        # (same lane ids, fresh counter streams) gives identical picks.
        engine, spec = self._engine(medium_graph)
        beta = spec.dynamic_parameter
        vs, ss = _queries(engine.index, 600, seed=8)
        prevs = np.array(
            [int(medium_graph.nbr[medium_graph.indptr[v]]) for v in vs],
            dtype=np.int64,
        )
        lanes = np.arange(600, dtype=np.int64)

        def run(idx):
            return engine._beta_fallback_batch(
                vs[idx], ss[idx], prevs[idx], beta,
                LaneRng(lanes.astype(np.uint64) + 1), lanes[idx],
                CostCounters(),
            )

        whole = run(slice(None))
        halves = np.concatenate([run(slice(0, 300)), run(slice(300, None))])
        assert np.array_equal(whole, halves)

    def test_forced_fallback_walks(self, medium_graph, monkeypatch):
        # One rejection round + a huge q makes nearly every non-neighbor
        # candidate reject, so real frontiers drain through the fallback.
        monkeypatch.setattr(batch_mod, "_MAX_BETA_ROUNDS", 1)
        engine, _ = self._engine(medium_graph, q=1e6)
        workload = Workload(max_length=12, max_walks=80)
        result = engine.run(workload, seed=6, record_paths=True)
        rerun = self._engine(medium_graph, q=1e6)[0].run(
            workload, seed=6, record_paths=True)
        assert result.num_walks == 80
        for path in result.paths:
            assert is_temporal_path(medium_graph, path.hops)
        assert [tuple(p.vertices) for p in result.paths] == \
            [tuple(p.vertices) for p in rerun.paths]


class TestDecayRadixForest:
    WM = WeightModel("exponential_decay", scale=5.0)

    def _stream(self, n=600, seed=3, horizon=90.0):
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(0.0, horizon, size=n))
        dst = rng.integers(0, 40, size=n).astype(np.int64)
        return dst, times

    def test_matches_carry_forest(self):
        dst, times = self._stream()
        carry = VertexIncrementalHPAT(self.WM)
        radix = DecayRadixForest(self.WM)
        for lo in range(0, 600, 50):
            carry.append_batch(dst[lo:lo + 50], times[lo:lo + 50])
            radix.append_batch(dst[lo:lo + 50], times[lo:lo + 50])
        d1, t1, w1 = carry.edges_desc()
        d2, t2, w2 = radix.edges_desc()
        assert np.array_equal(d1, d2) and np.array_equal(t1, t2)
        np.testing.assert_allclose(w1, w2, rtol=1e-12)
        assert radix.merged_edges == 0

    def test_sampling_distribution(self):
        dst, times = self._stream(n=300)
        radix = DecayRadixForest(self.WM)
        radix.append_batch(dst, times)
        s = radix.candidate_count(times[0] - 1.0)  # newer-than t
        assert s == 300
        _, t, w = radix.edges_desc()
        probs = w / w.sum()
        rng = make_rng(5)
        counters = CostCounters()
        # sample() returns (dst, time); timestamps are unique, so they
        # identify the drawn edge.
        drawn_t = np.array([radix.sample(s, rng, counters)[1]
                            for _ in range(12000)])
        order = np.argsort(t)
        idx = order[np.searchsorted(t[order], drawn_t)]
        assert chisquare_ok(np.bincount(idx, minlength=s).astype(float),
                            probs)

    def test_snapshot_restore_roundtrip(self):
        dst, times = self._stream()
        radix = DecayRadixForest(self.WM)
        radix.append_batch(dst[:400], times[:400])
        snap = radix.snapshot()
        before = radix.edges_desc()
        radix.append_batch(dst[400:], times[400:])
        radix.restore(snap)
        after = radix.edges_desc()
        for a, b in zip(before, after):
            np.testing.assert_array_equal(a, b)
        # The restored forest accepts the stream again, identically.
        radix.append_batch(dst[400:], times[400:])
        assert radix.num_edges == 600

    def test_out_of_order_batch_rejected(self):
        from repro.exceptions import NotSupportedError

        radix = DecayRadixForest(self.WM)
        radix.append_batch(np.array([1]), np.array([10.0]))
        with pytest.raises(NotSupportedError):
            radix.append_batch(np.array([2]), np.array([5.0]))

    def test_growth_kind_rejected(self):
        from repro.exceptions import NotSupportedError

        with pytest.raises(NotSupportedError):
            DecayRadixForest(WeightModel("exponential", scale=2.0))

    def test_incremental_hpat_selects_factorized(self):
        from repro.graph.edge_stream import EdgeStream

        inc_decay = IncrementalHPAT(self.WM)
        inc_growth = IncrementalHPAT(WeightModel("exponential", scale=2.0))
        assert inc_decay.factorized and not inc_growth.factorized
        dst, times = self._stream(n=200)
        src = np.zeros(200, dtype=np.int64)
        for lo in range(0, 200, 25):
            sl = slice(lo, lo + 25)
            inc_decay.apply_batch(EdgeStream(src[sl], dst[sl], times[sl]))
        # Cost oracle: factorized maintenance never re-indexes, so total
        # update work stays at exactly one unit per appended edge.
        assert inc_decay.update_work() == inc_decay.num_edges == 200
