"""Parallel construction pipeline (Section 4.2)."""

import numpy as np
import pytest

from repro.core.builder import (
    ConstructionReport,
    Preprocessed,
    build_hpat,
    build_pat,
    build_prefix_array,
    preprocess,
    search_candidate_sets,
)
from repro.core.weights import WeightModel
from repro.rng import make_rng
from tests.conftest import chisquare_ok


class TestCandidateSearch:
    def test_matches_graph_method(self, small_graph):
        assert np.array_equal(
            search_candidate_sets(small_graph),
            small_graph.candidate_counts_per_edge(),
        )

    def test_parallel_matches_serial(self, medium_graph):
        serial = search_candidate_sets(medium_graph, workers=1)
        parallel = search_candidate_sets(medium_graph, workers=4)
        assert np.array_equal(serial, parallel)

    def test_empty_graph(self):
        from repro.graph.edge_stream import EdgeStream
        from repro.graph.temporal_graph import TemporalGraph

        graph = TemporalGraph.from_stream(EdgeStream.empty(), num_vertices=2)
        assert search_candidate_sets(graph).size == 0


class TestPrefixArray:
    def test_layout(self, toy_graph):
        weights = WeightModel("linear_rank").compute(toy_graph)
        c = build_prefix_array(toy_graph, weights)
        assert c.size == toy_graph.num_edges + toy_graph.num_vertices
        # Vertex 7's segment: leading 0 then cumsum of 7..1.
        base = toy_graph.indptr[7] + 7
        assert c[base] == 0.0
        assert c[base + 7] == 28.0

    def test_parallel_matches_serial(self, medium_graph):
        weights = WeightModel("exponential", scale=10.0).compute(medium_graph)
        a = build_prefix_array(medium_graph, weights, workers=1)
        b = build_prefix_array(medium_graph, weights, workers=4)
        assert np.array_equal(a, b)

    def test_precision_with_tiny_weights(self, medium_graph):
        """Per-segment cumsum keeps relative precision for exp weights."""
        weights = WeightModel("exponential", scale=5.0).compute(medium_graph)
        c = build_prefix_array(medium_graph, weights)
        v = int(np.argmax(medium_graph.degrees()))
        lo = medium_graph.indptr[v]
        base = lo + v
        d = medium_graph.out_degree(v)
        exact = np.concatenate([[0.0], np.cumsum(weights[lo : lo + d])])
        assert np.allclose(c[base : base + d + 1], exact, rtol=1e-12)


class TestParallelEquivalence:
    def test_hpat_parallel_matches_serial(self, medium_graph):
        weights = WeightModel("linear_rank").compute(medium_graph)
        h1 = build_hpat(medium_graph, weights, workers=1)
        h4 = build_hpat(medium_graph, weights, workers=4)
        assert np.array_equal(h1.prob, h4.prob)
        assert np.array_equal(h1.alias, h4.alias)
        assert np.array_equal(h1.c, h4.c)

    def test_pat_parallel_matches_serial(self, medium_graph):
        weights = WeightModel("linear_rank").compute(medium_graph)
        p1 = build_pat(medium_graph, weights, workers=1)
        p4 = build_pat(medium_graph, weights, workers=4)
        assert np.array_equal(p1.prob, p4.prob)
        assert np.array_equal(p1.alias, p4.alias)


class TestPreprocess:
    @pytest.mark.parametrize("structure", ["hpat", "pat", "its"])
    def test_structures(self, small_graph, structure):
        pre = preprocess(small_graph, WeightModel("uniform"), structure=structure)
        assert isinstance(pre, Preprocessed)
        assert pre.candidate_sizes.size == small_graph.num_edges
        rng = make_rng(0)
        v = int(np.argmax(small_graph.degrees()))
        idx = pre.index.sample(v, small_graph.out_degree(v), rng)
        assert 0 <= idx < small_graph.out_degree(v)

    def test_unknown_structure(self, small_graph):
        with pytest.raises(ValueError):
            preprocess(small_graph, WeightModel("uniform"), structure="nope")

    def test_report_phases_recorded(self, small_graph):
        pre = preprocess(small_graph, WeightModel("uniform"))
        report = pre.report
        assert report.total_seconds > 0
        snap = report.snapshot()
        assert {"candidate_search_s", "index_build_s", "aux_index_s"} <= set(snap)

    def test_aux_skipped_when_disabled(self, small_graph):
        pre = preprocess(
            small_graph, WeightModel("uniform"), with_aux_index=False
        )
        assert pre.index.aux is None
        assert pre.report.aux_index_seconds == 0.0


class TestZeroWeightTrunks:
    def test_zero_weight_edges_never_sampled(self):
        """Edges with zero weight must never be drawn, in any structure."""
        from repro.graph.edge_stream import EdgeStream
        from repro.graph.temporal_graph import TemporalGraph

        # One vertex, 8 edges, half with zero weight (custom weights).
        stream = EdgeStream([0] * 8, list(range(1, 9)), list(range(8)))
        graph = TemporalGraph.from_stream(stream)
        weights = np.array([1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0])
        rng = make_rng(0)
        for build in (build_hpat, build_pat):
            index = build(graph, weights)
            draws = {index.sample(0, 8, rng) for _ in range(4000)}
            zero_positions = {1, 3, 5, 7}
            assert not (draws & zero_positions), build.__name__


class TestWeightValidation:
    """Bad weight arrays must fail loudly, not corrupt indices silently."""

    @pytest.mark.parametrize("build", [build_hpat, build_pat])
    def test_negative_weights_rejected(self, toy_graph, build):
        weights = WeightModel("uniform").compute(toy_graph)
        weights[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            build(toy_graph, weights)

    @pytest.mark.parametrize("build", [build_hpat, build_pat])
    def test_nan_weights_rejected(self, toy_graph, build):
        weights = WeightModel("uniform").compute(toy_graph)
        weights[3] = float("nan")
        with pytest.raises(ValueError, match="finite"):
            build(toy_graph, weights)

    @pytest.mark.parametrize("build", [build_hpat, build_pat])
    def test_wrong_length_rejected(self, toy_graph, build):
        with pytest.raises(ValueError, match="one entry per edge"):
            build(toy_graph, np.ones(3))
