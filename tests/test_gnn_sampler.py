"""Temporal GNN neighborhood sampling (paper §4.4's TGNN use case)."""

import numpy as np
import pytest

from repro.gnn import TemporalNeighborSampler
from repro.graph.generators import temporal_powerlaw
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import make_rng
from tests.conftest import chisquare_ok


@pytest.fixture(scope="module")
def interaction_graph():
    return TemporalGraph.from_stream(
        temporal_powerlaw(60, 2500, alpha=0.8, time_horizon=100.0, seed=6)
    )


def chain_graph(n=16):
    """Vertex 0 interacts with i+1 at time i."""
    return TemporalGraph.from_edges([(0, i + 1, float(i)) for i in range(n)])


class TestNoFuturePeeking:
    def test_all_samples_strictly_before_query(self, interaction_graph):
        sampler = TemporalNeighborSampler(interaction_graph, seed=0)
        nodes = np.arange(interaction_graph.num_vertices)
        times = np.full(nodes.size, 50.0)
        block = sampler.sample_neighbors(nodes, times, k=5)
        assert np.all(block.times[block.mask] < 50.0)

    def test_multihop_times_decrease(self, interaction_graph):
        sampler = TemporalNeighborSampler(interaction_graph, seed=1)
        seeds = np.arange(10)
        blocks = sampler.sample_blocks(seeds, np.full(10, 90.0), fanouts=[4, 3])
        assert 1 <= len(blocks) <= 2
        if len(blocks) == 2:
            # Every hop-2 sample precedes its hop-1 seed time.
            assert np.all(
                blocks[1].times[blocks[1].mask] < blocks[1].seed_times[blocks[1].mask.any(axis=1)].max()
            )
            for row in range(blocks[1].seeds.size):
                row_mask = blocks[1].mask[row]
                if row_mask.any():
                    assert np.all(
                        blocks[1].times[row][row_mask] < blocks[1].seed_times[row]
                    )

    def test_query_before_first_interaction_is_empty(self):
        graph = chain_graph()
        sampler = TemporalNeighborSampler(graph, seed=0)
        block = sampler.sample_neighbors([0], [0.0], k=4)  # t=0: nothing earlier
        assert not block.mask.any()

    def test_num_earlier_interactions(self):
        graph = chain_graph(8)
        sampler = TemporalNeighborSampler(graph, seed=0)
        assert sampler.num_earlier_interactions(0, 0.0) == 0
        assert sampler.num_earlier_interactions(0, 3.5) == 4
        assert sampler.num_earlier_interactions(0, 100.0) == 8


class TestDistributions:
    def test_uniform_over_past(self):
        graph = chain_graph(8)
        sampler = TemporalNeighborSampler(graph, recency_scale=None, seed=2)
        block = sampler.sample_neighbors([0] * 6000, [100.0] * 6000, k=1)
        counts = np.bincount(block.neighbors[:, 0], minlength=9)[1:]
        assert chisquare_ok(counts.astype(float), np.full(8, 1 / 8))

    def test_recency_bias(self):
        """exp recency: neighbor i+1 (time i) has weight exp(i/scale)."""
        graph = chain_graph(8)
        sampler = TemporalNeighborSampler(graph, recency_scale=2.0, seed=3)
        block = sampler.sample_neighbors([0] * 30000, [100.0] * 30000, k=1)
        counts = np.bincount(block.neighbors[:, 0], minlength=9)[1:].astype(float)
        w = np.exp(np.arange(8) / 2.0)
        assert chisquare_ok(counts, w / w.sum())
        # Qualitative: the most recent interaction dominates.
        assert counts[-1] == counts.max()

    def test_partial_past_window(self):
        """Query at t=4.5 sees only interactions 0..4 (times 0..4)."""
        graph = chain_graph(8)
        sampler = TemporalNeighborSampler(graph, recency_scale=5.0, seed=4)
        block = sampler.sample_neighbors([0] * 2000, [4.5] * 2000, k=2)
        seen = set(block.neighbors[block.mask].tolist())
        assert seen == {1, 2, 3, 4, 5}  # neighbors with times 0..4


class TestBlocks:
    def test_shapes_and_padding(self, interaction_graph):
        sampler = TemporalNeighborSampler(interaction_graph, seed=5)
        block = sampler.sample_neighbors([0, 1, 2], [90.0, 90.0, 90.0], k=7)
        assert block.neighbors.shape == (3, 7)
        assert block.times.shape == (3, 7)
        assert block.mask.shape == (3, 7)
        assert block.fanout == 7
        # Padding rows/cells are zeroed.
        assert np.all(block.neighbors[~block.mask] == 0)

    def test_flatten_frontier(self, interaction_graph):
        sampler = TemporalNeighborSampler(interaction_graph, seed=6)
        block = sampler.sample_neighbors(np.arange(8), np.full(8, 80.0), k=3)
        nodes, times = block.flatten_frontier()
        assert nodes.size == times.size == int(block.mask.sum())

    def test_validation(self, interaction_graph):
        sampler = TemporalNeighborSampler(interaction_graph, seed=0)
        with pytest.raises(ValueError):
            sampler.sample_neighbors([0], [1.0], k=0)
        with pytest.raises(ValueError):
            sampler.sample_neighbors([0, 1], [1.0], k=2)

    def test_counters_and_memory(self, interaction_graph):
        sampler = TemporalNeighborSampler(interaction_graph, seed=7)
        sampler.sample_neighbors(np.arange(10), np.full(10, 90.0), k=4)
        assert sampler.counters.steps > 0
        assert sampler.nbytes() > 0

    def test_deterministic_with_seed(self, interaction_graph):
        a = TemporalNeighborSampler(interaction_graph, recency_scale=10.0, seed=9)
        b = TemporalNeighborSampler(interaction_graph, recency_scale=10.0, seed=9)
        ba = a.sample_neighbors(np.arange(5), np.full(5, 70.0), k=3)
        bb = b.sample_neighbors(np.arange(5), np.full(5, 70.0), k=3)
        assert np.array_equal(ba.neighbors, bb.neighbors)
        assert np.array_equal(ba.times, bb.times)
