"""CostCounters: the machine-independent cost model."""

import pytest

from repro.sampling.counters import BLOCK_BYTES, CostCounters


class TestRecording:
    def test_edges_per_step(self):
        c = CostCounters()
        c.record_step()
        c.record_scan(10)
        c.record_step()
        c.record_scan(4)
        assert c.edges_per_step == 7.0

    def test_edges_per_step_no_steps(self):
        assert CostCounters().edges_per_step == 0.0

    def test_trial_accounting(self):
        c = CostCounters()
        c.record_trial(False)
        c.record_trial(False)
        c.record_trial(True)
        assert c.rejection_trials == 3
        assert c.rejected == 2
        assert c.acceptance_ratio == pytest.approx(1 / 3)
        assert c.edges_evaluated == 3

    def test_acceptance_ratio_default(self):
        assert CostCounters().acceptance_ratio == 1.0

    def test_probe_accounting(self):
        c = CostCounters()
        c.record_probe(5)
        assert c.binary_search_probes == 5
        assert c.edges_evaluated == 5

    def test_io_block_rounding(self):
        c = CostCounters()
        c.record_io(1)
        assert c.io_blocks == 1
        c.record_io(BLOCK_BYTES)
        assert c.io_blocks == 2
        c.record_io(BLOCK_BYTES + 1)
        assert c.io_blocks == 4
        assert c.io_bytes == 1 + BLOCK_BYTES + BLOCK_BYTES + 1


class TestMerge:
    def test_merge_sums_fields(self):
        a, b = CostCounters(), CostCounters()
        a.record_step()
        a.record_scan(3)
        b.record_step()
        b.record_trial(True)
        b.record_io(100)
        a.merge(b)
        assert a.steps == 2
        assert a.edges_evaluated == 4
        assert a.rejection_trials == 1
        assert a.io_blocks == 1

    def test_snapshot_keys(self):
        snap = CostCounters().snapshot()
        for key in ("steps", "edges_per_step", "acceptance_ratio", "io_blocks"):
            assert key in snap


class TestMergeAll:
    def _filled(self, k):
        c = CostCounters()
        for _ in range(k):
            c.record_step()
            c.record_trial(k % 2 == 0)
        c.record_probe(k)
        c.record_alias_draw()
        c.record_io(k * 100)
        return c

    def test_merge_all_equals_sequential_merge(self):
        parts = [self._filled(k) for k in (1, 3, 5)]
        folded = CostCounters.merge_all(parts)
        manual = CostCounters()
        for part in parts:
            manual.merge(part)
        assert folded.snapshot() == manual.snapshot()

    def test_merge_all_is_order_independent(self):
        """Associativity + commutativity: any fold order agrees — the
        property the parallel executor's barrier fold relies on."""
        parts = [self._filled(k) for k in (2, 4, 7, 9)]
        fwd = CostCounters.merge_all(parts)
        rev = CostCounters.merge_all(reversed(parts))
        assert fwd.snapshot() == rev.snapshot()

    def test_merge_all_empty(self):
        assert CostCounters.merge_all([]).snapshot() == CostCounters().snapshot()

    def test_merge_all_leaves_parts_untouched(self):
        part = self._filled(3)
        before = part.snapshot()
        CostCounters.merge_all([part, self._filled(2)])
        assert part.snapshot() == before
