"""Graph transforms."""

import numpy as np
import pytest

from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.transform import (
    induced_subgraph,
    largest_temporal_component,
    merge,
    normalize_times,
    reverse,
)
from repro.graph.validate import check_graph


class TestReverse:
    def test_edges_flipped(self, toy_graph):
        rev = reverse(toy_graph)
        assert rev.num_edges == toy_graph.num_edges
        assert check_graph(rev) == []
        # 7 -> 6 @ 7 becomes 6 -> 7 @ 7.
        nbrs, times = rev.neighbors(6)
        assert 7 in nbrs.tolist()

    def test_double_reverse_identity(self, small_graph):
        twice = reverse(reverse(small_graph))
        assert np.array_equal(twice.indptr, small_graph.indptr)
        assert np.array_equal(twice.nbr, small_graph.nbr)
        assert np.array_equal(twice.etime, small_graph.etime)

    def test_degree_swap(self):
        graph = TemporalGraph.from_edges([(0, 1, 1.0), (0, 2, 2.0)])
        rev = reverse(graph)
        assert rev.out_degree(0) == 0
        assert rev.out_degree(1) == 1
        assert rev.out_degree(2) == 1


class TestInducedSubgraph:
    def test_only_internal_edges_kept(self, toy_graph):
        sub = induced_subgraph(toy_graph, [7, 4, 5, 6])
        assert sub.num_vertices == toy_graph.num_vertices  # id space kept
        src = np.repeat(np.arange(sub.num_vertices), np.diff(sub.indptr))
        allowed = {4, 5, 6, 7}
        assert set(src.tolist()) <= allowed
        assert set(sub.nbr.tolist()) <= allowed

    def test_empty_subset(self, toy_graph):
        sub = induced_subgraph(toy_graph, [])
        assert sub.num_edges == 0

    def test_full_subset_identity(self, small_graph):
        sub = induced_subgraph(small_graph, range(small_graph.num_vertices))
        assert sub.num_edges == small_graph.num_edges


class TestNormalizeTimes:
    def test_range_mapped(self, small_graph):
        norm = normalize_times(small_graph, horizon=10.0)
        assert norm.etime.min() == pytest.approx(0.0)
        assert norm.etime.max() == pytest.approx(10.0)

    def test_order_preserved(self, small_graph):
        """Relative time order (hence candidate sets) is unchanged."""
        norm = normalize_times(small_graph, horizon=42.0)
        assert np.array_equal(norm.nbr, small_graph.nbr)
        # Rank order of times within every vertex segment is identical.
        for v in range(small_graph.num_vertices):
            _, t_old = small_graph.neighbors(v)
            _, t_new = norm.neighbors(v)
            assert np.array_equal(np.argsort(t_old), np.argsort(t_new))

    def test_constant_times(self):
        graph = TemporalGraph.from_edges([(0, 1, 5.0), (1, 2, 5.0)])
        norm = normalize_times(graph, horizon=10.0)
        assert np.all(norm.etime == 0.0)

    def test_bad_horizon(self, small_graph):
        with pytest.raises(ValueError):
            normalize_times(small_graph, horizon=0.0)

    def test_empty(self):
        graph = TemporalGraph.from_stream(EdgeStream.empty(), num_vertices=2)
        assert normalize_times(graph).num_edges == 0


class TestLargestComponent:
    def test_disconnected_halves(self):
        # Two temporally connected chains; the bigger one wins.
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0),
                 (10, 11, 1.0)]
        graph = TemporalGraph.from_edges(edges, num_vertices=12)
        sub, source, mask = largest_temporal_component(graph)
        assert source == 0
        assert mask.sum() == 4
        assert sub.num_edges == 3

    def test_empty_graph(self):
        graph = TemporalGraph.from_stream(EdgeStream.empty(), num_vertices=3)
        sub, _, mask = largest_temporal_component(graph)
        assert sub.num_edges == 0
        assert mask.sum() == 0


class TestMerge:
    def test_union_counts(self, toy_graph):
        other = TemporalGraph.from_edges([(0, 9, 100.0)], num_vertices=10)
        merged = merge(toy_graph, other)
        assert merged.num_edges == toy_graph.num_edges + 1
        assert merged.candidate_count(0, 50.0) == 1  # the new late edge

    def test_vertex_space_is_max(self):
        a = TemporalGraph.from_edges([(0, 1, 1.0)])
        b = TemporalGraph.from_edges([(5, 6, 1.0)])
        assert merge(a, b).num_vertices == 7
