"""Bench harness: runner rows, speedups, report formatting."""

import math

import pytest

from repro.bench.report import format_rows, format_series
from repro.bench.runner import ExperimentRow, run_engines, speedups
from repro.bench.workloads import paper_workload, quick_workload
from repro.engines import GraphWalkerEngine, TeaEngine
from repro.walks.apps import unbiased_walk


class TestWorkloads:
    def test_paper_defaults(self):
        wl = paper_workload()
        assert wl.walks_per_vertex == 1
        assert wl.max_length == 80

    def test_quick_is_capped(self):
        wl = quick_workload()
        assert wl.max_walks is not None


class TestRunEngines:
    def test_rows_produced(self, small_graph):
        rows = run_engines(
            small_graph,
            unbiased_walk(),
            {
                "tea": lambda g, s: TeaEngine(g, s),
                "graphwalker": lambda g, s: GraphWalkerEngine(g, s),
            },
            quick_workload(max_walks=10, length=5),
            dataset="small",
        )
        assert [r.engine for r in rows] == ["tea", "graphwalker"]
        assert all(r.dataset == "small" for r in rows)
        assert all(r.steps > 0 for r in rows)

    def test_oom_row(self, medium_graph):
        rows = run_engines(
            medium_graph,
            unbiased_walk(),
            {
                "alias": lambda g, s: TeaEngine(
                    g, s, structure="alias", alias_budget_bytes=1
                )
            },
            quick_workload(max_walks=2, length=2),
            dataset="m",
        )
        assert rows[0].oom
        assert math.isnan(rows[0].total_seconds)


class TestSpeedups:
    def make_rows(self):
        return [
            ExperimentRow("d", "tea", "a", total_seconds=1.0),
            ExperimentRow("d", "slow", "a", total_seconds=10.0),
            ExperimentRow("d", "oomed", "a", oom=True),
        ]

    def test_speedup_convention(self):
        result = speedups(self.make_rows(), baseline="tea")
        assert result["slow"] == pytest.approx(10.0)
        assert result["tea"] == pytest.approx(1.0)
        assert math.isnan(result["oomed"])

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            speedups(self.make_rows(), baseline="nope")


class TestReport:
    def test_format_rows_renders_oom(self):
        rows = [
            ExperimentRow("d", "tea", "a", total_seconds=1.234, edges_per_step=5.5,
                          memory_bytes=2048),
            ExperimentRow("d", "alias", "a", oom=True),
        ]
        text = format_rows(rows, title="demo")
        assert "demo" in text
        assert "OOM" in text
        assert "2.00 KiB" in text

    def test_format_series(self):
        text = format_series(
            {"tea": {1: 0.5, 16: 0.1}, "baseline": {1: 5.0, 16: 4.0}},
            x_label="threads",
            title="scaling",
        )
        assert "threads" in text
        assert "tea" in text and "baseline" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 1 + 2  # title + header + rule + 2 rows

    def test_format_series_missing_points(self):
        text = format_series({"a": {1: 1.0}, "b": {2: 2.0}}, x_label="x")
        assert "-" in text
