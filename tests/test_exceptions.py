"""Exception hierarchy."""

import pytest

from repro.exceptions import (
    EmptyCandidateSetError,
    GraphFormatError,
    NotSupportedError,
    SamplingBudgetExceeded,
    SimulatedOOM,
    TeaError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphFormatError,
            EmptyCandidateSetError,
            NotSupportedError,
            SamplingBudgetExceeded,
        ],
    )
    def test_all_derive_from_tea_error(self, exc):
        assert issubclass(exc, TeaError)

    def test_simulated_oom_fields(self):
        err = SimulatedOOM(10_000, 1_000, what="test structure")
        assert isinstance(err, TeaError)
        assert err.required_bytes == 10_000
        assert err.budget_bytes == 1_000
        assert "test structure" in str(err)
        assert "10,000" in str(err)
