"""Exception hierarchy."""

import pytest

from repro.exceptions import (
    ChecksumError,
    EmptyCandidateSetError,
    FaultPlanError,
    GraphFormatError,
    NotSupportedError,
    SamplingBudgetExceeded,
    SimulatedOOM,
    TeaError,
    TransientIOError,
    WorkerCrashError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphFormatError,
            EmptyCandidateSetError,
            NotSupportedError,
            SamplingBudgetExceeded,
            TransientIOError,
            ChecksumError,
            WorkerCrashError,
            FaultPlanError,
        ],
    )
    def test_all_derive_from_tea_error(self, exc):
        assert issubclass(exc, TeaError)

    def test_simulated_oom_fields(self):
        err = SimulatedOOM(10_000, 1_000, what="test structure")
        assert isinstance(err, TeaError)
        assert err.required_bytes == 10_000
        assert err.budget_bytes == 1_000
        assert "test structure" in str(err)
        assert "10,000" in str(err)

    def test_checksum_error_fields(self):
        err = ChecksumError(
            "mismatch", path="x/c.bin", page=3, expected=1, actual=2
        )
        assert err.path == "x/c.bin"
        assert err.page == 3
        assert err.expected == 1
        assert err.actual == 2

    def test_worker_crash_error_fields(self):
        err = WorkerCrashError("chunk died", chunk_id=5, attempts=3)
        assert err.chunk_id == 5
        assert err.attempts == 3
