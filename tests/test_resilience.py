"""Resilience layer: fault injection, retry, checksums, supervision,
prefetch fallback, and streaming rollback."""

import json
import pickle

import numpy as np
import pytest

from repro.core.outofcore import (
    CHECKSUM_PAGE_ELEMS,
    TrunkStore,
    scrub_store,
)
from repro.engines.base import Workload
from repro.exceptions import (
    ChecksumError,
    FaultPlanError,
    NotSupportedError,
    TransientIOError,
    WorkerCrashError,
)
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.resilience import FaultInjector, FaultRule, RetryPolicy, is_transient
from repro.walks.apps import APPLICATIONS


def exp_spec():
    return APPLICATIONS["exponential"]


# -- fault injector -----------------------------------------------------------


class TestFaultInjector:
    def test_calls_selector_fires_exactly_there(self):
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "trunk_read", "kind": "io_error",
                        "calls": [1, 3]}]}
        )
        outcomes = []
        for _ in range(5):
            try:
                inj.check("trunk_read")
                outcomes.append("ok")
            except TransientIOError:
                outcomes.append("io")
        assert outcomes == ["ok", "io", "ok", "io", "ok"]

    def test_max_triggers_caps_firing(self):
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "trunk_read", "kind": "io_error",
                        "max_triggers": 2}]}
        )
        fired = 0
        for _ in range(6):
            try:
                inj.check("trunk_read")
            except TransientIOError:
                fired += 1
        assert fired == 2
        assert inj.total_fired == 2

    def test_probability_is_deterministic_per_seed(self):
        def firing_pattern(seed):
            inj = FaultInjector.from_plan(
                {"seed": seed,
                 "rules": [{"site": "trunk_read", "kind": "io_error",
                            "probability": 0.5}]}
            )
            pattern = []
            for _ in range(40):
                try:
                    inj.check("trunk_read")
                    pattern.append(0)
                except TransientIOError:
                    pattern.append(1)
            return pattern

        a, b = firing_pattern(11), firing_pattern(11)
        assert a == b, "same seed must replay the same firing sequence"
        assert 0 < sum(a) < 40, "p=0.5 should fire sometimes, not always"
        assert firing_pattern(12) != a, "different seeds should differ"

    def test_chunk_key_selectors(self):
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "chunk", "kind": "worker_crash",
                        "chunks": [2], "attempts": [0]}]}
        )
        assert inj.check("chunk", key=(1, 0)) is None
        with pytest.raises(WorkerCrashError) as err:
            inj.check("chunk", key=(2, 0))
        assert err.value.chunk_id == 2
        # The retry of the same chunk does not fire.
        assert inj.check("chunk", key=(2, 1)) is None

    def test_corrupt_block_returns_token(self):
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "trunk_read", "kind": "corrupt_block",
                        "calls": [0]}]}
        )
        token = inj.check("trunk_read")
        assert isinstance(token, int)
        assert inj.check("trunk_read") is None

    def test_sites_are_independent(self):
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "prefetch", "kind": "io_error", "calls": [0]}]}
        )
        inj.check("trunk_read")  # consumes trunk_read call 0, not prefetch's
        with pytest.raises(TransientIOError):
            inj.check("prefetch")

    def test_plan_from_file(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps(
            {"rules": [{"site": "chunk", "kind": "worker_hang",
                        "seconds": 0.0}]}
        ))
        inj = FaultInjector.from_plan(str(plan))
        assert inj.rules[0].kind == "worker_hang"
        assert inj.rules[0].seconds == 0.0

    @pytest.mark.parametrize("bad", [
        {"rules": [{"site": "nope", "kind": "io_error"}]},
        {"rules": [{"site": "chunk", "kind": "nope"}]},
        {"rules": [{"site": "chunk", "kind": "io_error",
                    "probability": 1.5}]},
        {"rules": [{"kind": "io_error"}]},
        {"rules": [{"site": "chunk", "kind": "io_error", "bogus": 1}]},
        {"bogus": []},
        "not json {",
        "/no/such/plan-file.json",
        42,
    ])
    def test_malformed_plans_raise(self, bad):
        with pytest.raises(FaultPlanError):
            FaultInjector.from_plan(bad)

    def test_injector_pickles(self):
        inj = FaultInjector(
            [FaultRule(site="trunk_read", kind="io_error", max_triggers=1)],
            seed=3,
        )
        with pytest.raises(TransientIOError):
            inj.check("trunk_read")
        clone = pickle.loads(pickle.dumps(inj))
        assert clone.total_fired == 1
        assert clone.check("trunk_read") is None  # max_triggers carried over


# -- retry policy -------------------------------------------------------------


class TestRetryPolicy:
    def make(self, **kw):
        kw.setdefault("sleep", lambda s: None)
        return RetryPolicy(**kw)

    def test_transient_retried_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("flaky")
            return "done"

        retried = []
        policy = self.make(max_retries=3)
        assert policy.call(flaky, on_retry=lambda a, e: retried.append(a)) == "done"
        assert calls["n"] == 3
        assert retried == [0, 1]

    def test_budget_exhaustion_raises_original(self):
        policy = self.make(max_retries=2)
        with pytest.raises(TransientIOError):
            policy.call(lambda: (_ for _ in ()).throw(TransientIOError("x")))

    def test_fatal_errors_not_retried(self):
        calls = {"n": 0}

        def corrupt():
            calls["n"] += 1
            raise ChecksumError("bad page")

        policy = self.make(max_retries=5)
        with pytest.raises(ChecksumError):
            policy.call(corrupt)
        assert calls["n"] == 1, "ChecksumError must never be retried"

    def test_classification(self):
        assert is_transient(TransientIOError("x"))
        assert is_transient(OSError(5, "EIO"))
        assert not is_transient(OSError(2, "ENOENT"))
        assert not is_transient(ChecksumError("x"))
        assert not is_transient(ValueError("x"))

    def test_backoff_grows_and_jitter_is_seeded(self):
        a = self.make(max_retries=3, base_delay=0.01, multiplier=2.0,
                      max_delay=1.0, jitter=0.25, seed=5)
        b = self.make(max_retries=3, base_delay=0.01, multiplier=2.0,
                      max_delay=1.0, jitter=0.25, seed=5)
        da = [a.delay(k) for k in range(4)]
        db = [b.delay(k) for k in range(4)]
        assert da == db, "same-seed policies must produce the same jitter"
        for k, d in enumerate(da):
            base = 0.01 * 2.0**k
            assert base <= d <= base * 1.25

    def test_policy_pickles(self):
        policy = RetryPolicy(max_retries=1, seed=9)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.max_retries == 1 and clone.seed == 9


# -- checksummed trunk store --------------------------------------------------


@pytest.fixture(scope="module")
def ooc_graph():
    from repro.graph.generators import temporal_powerlaw

    return TemporalGraph.from_stream(
        temporal_powerlaw(num_vertices=40, num_edges=800, alpha=0.8,
                          time_horizon=100.0, seed=3)
    )


def persist_store(graph, directory):
    from repro.core.builder import build_pat
    from repro.core.weights import WeightModel

    weights = WeightModel("exponential", scale=2.0).compute(graph)
    pat = build_pat(graph, weights, trunk_size=8)
    return TrunkStore.persist(pat, directory)


class TestChecksums:
    def test_persist_writes_sidecars_and_manifest(self, ooc_graph, tmp_path):
        persist_store(ooc_graph, tmp_path)
        for name in ("c", "prob", "alias"):
            assert (tmp_path / f"{name}.bin").exists()
            assert (tmp_path / f"{name}.crc").exists()
        manifest = json.loads((tmp_path / "checksums.json").read_text())
        assert manifest["algorithm"] == "crc32"
        assert manifest["page_elems"] == CHECKSUM_PAGE_ELEMS

    def test_scrub_clean_store(self, ooc_graph, tmp_path):
        persist_store(ooc_graph, tmp_path)
        report = scrub_store(tmp_path)
        assert report["clean"] and not report["corrupt"]
        assert report["pages_checked"] > 0

    def test_single_bit_flip_always_caught(self, ooc_graph, tmp_path):
        """Property: per-page CRC32 catches ANY single-bit flip."""
        persist_store(ooc_graph, tmp_path)
        rng = np.random.default_rng(42)
        files = ["c.bin", "prob.bin", "alias.bin"]
        page_bytes = CHECKSUM_PAGE_ELEMS * 8
        for _ in range(25):
            name = files[int(rng.integers(len(files)))]
            path = tmp_path / name
            size = path.stat().st_size
            offset = int(rng.integers(size))
            bit = int(rng.integers(8))
            with open(path, "r+b") as fh:
                fh.seek(offset)
                byte = fh.read(1)[0]
                fh.seek(offset)
                fh.write(bytes([byte ^ (1 << bit)]))
            report = scrub_store(tmp_path)
            assert not report["clean"], (
                f"flip of bit {bit} at {name}:{offset} went undetected"
            )
            pages = [(r["file"], r["page"]) for r in report["corrupt"]]
            assert (name, offset // page_bytes) in pages, (
                f"scrub did not locate the flipped page: {report['corrupt']}"
            )
            with open(path, "r+b") as fh:  # restore for the next trial
                fh.seek(offset)
                fh.write(bytes([byte]))
        assert scrub_store(tmp_path)["clean"]

    def test_verified_read_raises_on_corruption(self, ooc_graph, tmp_path):
        persist_store(ooc_graph, tmp_path)
        with open(tmp_path / "c.bin", "r+b") as fh:
            fh.seek(64)
            byte = fh.read(1)[0]
            fh.seek(64)
            fh.write(bytes([byte ^ 0x10]))
        store = TrunkStore(tmp_path, verify_checksums=True).open()
        try:
            with pytest.raises(ChecksumError) as err:
                store._load("c", 0, 16)
            assert err.value.page == 0
        finally:
            store.close()

    def test_unverified_read_still_fast_path(self, ooc_graph, tmp_path):
        """No verification, no injector: reads skip the checked path."""
        persist_store(ooc_graph, tmp_path)
        with open(tmp_path / "c.bin", "r+b") as fh:
            fh.seek(64)
            byte = fh.read(1)[0]
            fh.seek(64)
            fh.write(bytes([byte ^ 0x10]))
        store = TrunkStore(tmp_path).open()
        try:
            store._load("c", 0, 16)  # corrupt but unchecked: no raise
        finally:
            store.close()

    def test_verify_requires_manifest(self, ooc_graph, tmp_path):
        persist_store(ooc_graph, tmp_path)
        (tmp_path / "checksums.json").unlink()
        with pytest.raises(ChecksumError):
            TrunkStore(tmp_path, verify_checksums=True).open()

    def test_scrub_flags_truncated_file(self, ooc_graph, tmp_path):
        persist_store(ooc_graph, tmp_path)
        path = tmp_path / "alias.bin"
        with open(path, "r+b") as fh:
            fh.truncate(max(8, path.stat().st_size // 2))
        report = scrub_store(tmp_path)
        assert not report["clean"]

    def test_injected_corruption_caught_in_engine_run(self, ooc_graph):
        from repro.engines.tea_outofcore import TeaOutOfCoreEngine

        inj = FaultInjector.from_plan(
            {"rules": [{"site": "trunk_read", "kind": "corrupt_block",
                        "calls": [2]}]}
        )
        engine = TeaOutOfCoreEngine(
            ooc_graph, exp_spec(), verify_checksums=True, fault_injector=inj
        )
        with pytest.raises(ChecksumError):
            engine.run(Workload(walks_per_vertex=1, max_length=20), seed=0,
                       record_paths=False)

    def test_transient_io_retried_and_counted(self, ooc_graph):
        from repro.engines.tea_outofcore import TeaOutOfCoreEngine

        workload = Workload(walks_per_vertex=1, max_length=15)
        baseline = TeaOutOfCoreEngine(ooc_graph, exp_spec()).run(
            workload, seed=1
        )
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "trunk_read", "kind": "io_error",
                        "max_triggers": 3}]}
        )
        engine = TeaOutOfCoreEngine(
            ooc_graph, exp_spec(),
            retry_policy=RetryPolicy(max_retries=4, base_delay=0.0005),
            fault_injector=inj,
        )
        result = engine.run(workload, seed=1)
        assert [w.hops for w in result.paths] == [w.hops for w in baseline.paths]
        assert engine.index.store.io_retries == 3
        assert result.registry.counter(
            "resilience.io_retries",
            "transient trunk-read failures retried",
        ).value == 3

    def test_retry_budget_exhaustion_propagates(self, ooc_graph):
        from repro.engines.tea_outofcore import TeaOutOfCoreEngine

        inj = FaultInjector.from_plan(
            {"rules": [{"site": "trunk_read", "kind": "io_error"}]}
        )
        engine = TeaOutOfCoreEngine(
            ooc_graph, exp_spec(),
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.0005),
            fault_injector=inj,
        )
        with pytest.raises(TransientIOError):
            engine.run(Workload(walks_per_vertex=1, max_length=10), seed=0,
                       record_paths=False)


# -- prefetcher ---------------------------------------------------------------


class TestPrefetchResilience:
    def test_full_queue_drops_are_counted(self, ooc_graph, tmp_path):
        from repro.engines.tea_outofcore.prefetch import AsyncPrefetcher

        store = persist_store(ooc_graph, tmp_path).open()
        try:
            pf = AsyncPrefetcher(store)  # worker never started: queue fills
            pf.submit([("c", 0, 4)])
            pf.submit([("c", 8, 12)])
            assert store.prefetch_dropped == 0
            pf.submit([("c", 16, 20), ("c", 24, 28)])  # queue depth is 2
            assert store.prefetch_dropped == 2
            assert store.prefetch_issued == 2  # drops are never "issued"
        finally:
            store.close()

    def test_worker_failure_marks_prefetcher_failed(self, ooc_graph,
                                                    tmp_path):
        import time

        from repro.engines.tea_outofcore.prefetch import AsyncPrefetcher

        inj = FaultInjector.from_plan(
            {"rules": [{"site": "prefetch", "kind": "io_error", "calls": [0]}]}
        )
        store = persist_store(ooc_graph, tmp_path)
        store.fault_injector = inj
        store.open()
        try:
            pf = AsyncPrefetcher(store)
            pf.start()
            pf.submit([("c", 0, 4)])
            deadline = time.monotonic() + 10.0
            while not pf.failed and time.monotonic() < deadline:
                time.sleep(0.005)
            assert pf.failed, "injected worker fault never surfaced"
            pf.drain()  # settles the poisoned batch's keys
            assert store.prefetch_failures == 1
            # Failed prefetchers refuse further work without issuing.
            pf.submit([("c", 8, 12)])
            assert store.prefetch_issued == 1
            pf.close()
            # Conservation survives the failure: the one issued key is
            # settled (as in-flight), never lost.
            assert store.prefetch_issued == (
                store.prefetch_hits + store.prefetch_wasted
                + store.prefetch_in_flight
            )
        finally:
            store.close()

    def test_worker_failure_falls_back_to_sync(self, ooc_graph):
        """Engine-level: a poisoned prefetch worker never changes the
        walks (prefetch consumes no sampling RNG) and the ledger stays
        conserved whether or not the fault fired before the run ended."""
        from repro.engines.tea_outofcore import BatchTeaOutOfCoreEngine

        workload = Workload(walks_per_vertex=1, max_length=20)
        baseline = BatchTeaOutOfCoreEngine(
            ooc_graph, exp_spec(), prefetch=False
        ).run(workload, seed=2)

        inj = FaultInjector.from_plan(
            {"rules": [{"site": "prefetch", "kind": "io_error", "calls": [0]}]}
        )
        engine = BatchTeaOutOfCoreEngine(
            ooc_graph, exp_spec(), prefetch=True, fault_injector=inj,
        )
        result = engine.run(workload, seed=2)
        assert [w.hops for w in result.paths] == [w.hops for w in baseline.paths]
        store = engine.index.store
        assert store.prefetch_issued == (
            store.prefetch_hits + store.prefetch_wasted
            + store.prefetch_in_flight
        )
        if store.prefetch_failures:  # worker won the race: must be retired
            assert engine._prefetcher is None


# -- worker supervision -------------------------------------------------------


@pytest.fixture(scope="module")
def par_graph():
    from repro.graph.generators import temporal_powerlaw

    return TemporalGraph.from_stream(
        temporal_powerlaw(num_vertices=48, num_edges=600, alpha=0.8,
                          time_horizon=100.0, seed=5)
    )


class TestWorkerSupervision:
    def make_engine(self, graph, injector=None, **kw):
        from repro.parallel.engine import ParallelBatchTeaEngine

        kw.setdefault("backend", "thread")
        kw.setdefault("workers", 2)
        kw.setdefault("chunk_size", 12)
        return ParallelBatchTeaEngine(
            graph, exp_spec(), fault_injector=injector, **kw
        )

    def test_crashed_chunk_retried_bit_identical(self, par_graph):
        workload = Workload(walks_per_vertex=1, max_length=10)
        baseline = self.make_engine(par_graph).run(workload, seed=0)
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "chunk", "kind": "worker_crash",
                        "chunks": [1], "attempts": [0]}]}
        )
        engine = self.make_engine(par_graph, inj, retries=2)
        result = engine.run(workload, seed=0)
        assert [w.hops for w in result.paths] == [w.hops for w in baseline.paths]
        assert engine.last_events["chunk_retries"] >= 1
        assert result.registry.counter(
            "parallel.chunk_retries", "chunk executions repeated"
        ).value >= 1

    def test_retry_budget_exhaustion_raises(self, par_graph):
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "chunk", "kind": "worker_crash",
                        "chunks": [0], "attempts": [0, 1, 2, 3]}]}
        )
        engine = self.make_engine(par_graph, inj, retries=1)
        with pytest.raises(WorkerCrashError) as err:
            engine.run(Workload(walks_per_vertex=1, max_length=5), seed=0,
                       record_paths=False)
        assert err.value.chunk_id == 0
        assert err.value.attempts == 2  # initial + 1 retry

    def test_hang_times_out_and_degrades(self, par_graph):
        workload = Workload(walks_per_vertex=1, max_length=10)
        baseline = self.make_engine(par_graph).run(workload, seed=4)
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "chunk", "kind": "worker_hang",
                        "chunks": [0], "attempts": [0], "seconds": 1.0}]}
        )
        engine = self.make_engine(par_graph, inj, retries=2,
                                  chunk_timeout=0.2)
        result = engine.run(workload, seed=4)
        assert [w.hops for w in result.paths] == [w.hops for w in baseline.paths]
        assert "serial" in engine.last_events["degraded"]
        assert engine.last_backend == "serial"

    def test_serial_backend_retries_inline(self, par_graph):
        workload = Workload(walks_per_vertex=1, max_length=10)
        baseline = self.make_engine(par_graph, backend="serial").run(
            workload, seed=0
        )
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "chunk", "kind": "worker_crash",
                        "chunks": [0, 2], "attempts": [0]}]}
        )
        engine = self.make_engine(par_graph, inj, backend="serial", retries=2)
        result = engine.run(workload, seed=0)
        assert [w.hops for w in result.paths] == [w.hops for w in baseline.paths]
        assert engine.last_events["chunk_retries"] == 2

    def test_process_worker_real_crash_recovered(self, par_graph):
        """A forked worker dies with os._exit; the pool breaks; the run
        still completes bit-identical (the chaos smoke covers this too —
        this is the pytest-visible variant)."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        workload = Workload(walks_per_vertex=1, max_length=8)
        baseline = self.make_engine(par_graph, backend="process").run(
            workload, seed=0
        )
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "chunk", "kind": "worker_crash",
                        "chunks": [1], "attempts": [0]}]}
        )
        engine = self.make_engine(par_graph, inj, backend="process",
                                  retries=2)
        result = engine.run(workload, seed=0)
        assert [w.hops for w in result.paths] == [w.hops for w in baseline.paths]
        assert engine.last_events["chunk_retries"] >= 1

    def test_warm_pool_rebuilt_after_crash_stays_deterministic(self, par_graph):
        """A worker death mid-run condemns the warm pool; the *same*
        engine's next run must transparently rebuild it (generation
        bump) and still walk bit-identical paths."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        workload = Workload(walks_per_vertex=1, max_length=8)
        clean = self.make_engine(par_graph, backend="process")
        baseline = clean.run(workload, seed=0)
        clean.close()
        inj = FaultInjector.from_plan(
            {"rules": [{"site": "chunk", "kind": "worker_crash",
                        "chunks": [1], "attempts": [0]}]}
        )
        engine = self.make_engine(par_graph, inj, backend="process",
                                  retries=2)
        try:
            r1 = engine.run(workload, seed=0)
            # The os._exit crash broke the process pool mid-run.
            gen1 = engine._pools["process"].generation
            assert engine._pools["process"].broken
            # Second run: the injector fires on (chunk 1, attempt 0)
            # again, so this exercises rebuild-under-fire too.
            r2 = engine.run(workload, seed=0)
            assert engine._pools["process"].generation > gen1
            assert engine.last_pool["builds"] >= 1
        finally:
            engine.close()
        hops = [w.hops for w in baseline.paths]
        assert [w.hops for w in r1.paths] == hops
        assert [w.hops for w in r2.paths] == hops


# -- streaming rollback -------------------------------------------------------


class TestStreamingRollback:
    def snapshot(self, index):
        return {
            v: tuple(a.copy() for a in vert.edges_desc())
            for v, vert in index.vertices.items()
        }

    def assert_state_equal(self, index, state):
        assert set(index.vertices) == set(state)
        for v, arrays in state.items():
            got = index.vertices[v].edges_desc()
            assert all(np.array_equal(g, r) for g, r in zip(got, arrays))

    def test_validation_error_mid_batch_rolls_back(self):
        from repro.core.incremental import IncrementalHPAT
        from repro.core.weights import WeightModel

        index = IncrementalHPAT(WeightModel("uniform"))
        index.apply_batch(EdgeStream([0, 1], [1, 0], [5.0, 6.0]))
        before = self.snapshot(index)
        # Vertex 1's group violates stream order (4.0 < its newest 6.0)
        # after vertex 0's group already applied.
        bad = EdgeStream([0, 1], [2, 2], [7.0, 4.0], sort=False)
        with pytest.raises(NotSupportedError):
            index.apply_batch(bad)
        assert index.num_edges == 2
        assert index.rollbacks == 1
        self.assert_state_equal(index, before)

    def test_injected_fault_mid_batch_rolls_back_and_retry_lands(self):
        from repro.core.incremental import IncrementalHPAT
        from repro.core.weights import WeightModel

        inj = FaultInjector.from_plan(
            {"rules": [{"site": "streaming_apply", "kind": "io_error",
                        "calls": [1]}]}
        )
        index = IncrementalHPAT(WeightModel("exponential", scale=2.0),
                                fault_injector=inj)
        batch = EdgeStream([0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0])
        with pytest.raises(TransientIOError):
            index.apply_batch(batch)
        assert index.num_edges == 0
        assert not index.vertices, "created vertices must be dropped"
        # Retry after the fault clears: lands exactly like a clean ingest.
        index.apply_batch(batch)
        reference = IncrementalHPAT(WeightModel("exponential", scale=2.0))
        reference.apply_batch(EdgeStream([0, 1, 2], [1, 2, 0],
                                         [1.0, 2.0, 3.0]))
        assert index.num_edges == reference.num_edges
        self.assert_state_equal(index, self.snapshot(reference))

    def test_streaming_engine_counts_rollbacks(self):
        from repro.streaming.batch import StreamingTeaEngine

        inj = FaultInjector.from_plan(
            {"rules": [{"site": "streaming_apply", "kind": "io_error",
                        "calls": [0]}]}
        )
        engine = StreamingTeaEngine(exp_spec(), fault_injector=inj)
        with pytest.raises(TransientIOError):
            engine.apply_batch(EdgeStream([0], [1], [1.0]))
        snap = engine.telemetry_snapshot()
        assert snap.counter(
            "resilience.rollbacks", "streaming batches rolled back"
        ).value == 1
        # The failed batch is not in the ingestion ledger.
        assert engine.num_edges == 0


# -- dead-end termination regression -----------------------------------------


def dead_end_graph():
    """Vertex 2 is a sink (in-edges only); vertex 3 is fully isolated
    as a start (no out-edges at all)."""
    return TemporalGraph.from_stream(EdgeStream(
        [0, 0, 1, 1], [1, 2, 2, 0], [1.0, 2.0, 3.0, 4.0]
    ))


DEAD_END_ENGINES = [
    "tea", "tea-batch", "tea-pat", "tea-its", "tea-ooc", "tea-ooc-batch",
    "graphwalker", "knightking", "ctdne", "tea-parallel",
]


class TestDeadEndTermination:
    @pytest.mark.parametrize("name", DEAD_END_ENGINES)
    def test_walks_reaching_dead_end_terminate(self, name):
        """Regression: a walk hitting a vertex with no (temporal)
        out-candidates must end the walk, never raise."""
        from repro.cli import ENGINES

        graph = dead_end_graph()
        engine = ENGINES[name](graph, exp_spec())
        result = engine.run(
            Workload(walks_per_vertex=2, max_length=10), seed=0
        )
        assert len(result.paths) == 2 * graph.num_vertices
        for path in result.paths:
            assert path.num_edges <= 10

    def test_streaming_walk_from_dead_end(self):
        from repro.streaming.batch import StreamingTeaEngine

        engine = StreamingTeaEngine(exp_spec())
        engine.apply_batch(EdgeStream([0, 1], [2, 2], [1.0, 2.0]))
        walk = engine.walk(2, max_length=5, seed=0)  # sink: no out-edges
        assert walk.num_edges == 0


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_scrub_clean_and_corrupt_exit_codes(self, ooc_graph, tmp_path,
                                                capsys):
        from repro.cli import main

        persist_store(ooc_graph, tmp_path)
        assert main(["scrub", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out
        with open(tmp_path / "prob.bin", "r+b") as fh:
            fh.seek(32)
            byte = fh.read(1)[0]
            fh.seek(32)
            fh.write(bytes([byte ^ 0x01]))
        assert main(["scrub", str(tmp_path)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_scrub_unreadable_store_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["scrub", str(tmp_path / "missing")]) == 2
        assert "cannot open" in capsys.readouterr().err

    def test_tea_error_maps_to_exit_2(self, capsys):
        from repro.cli import main

        code = main([
            "walk", "--dataset", "tiny", "--engine", "tea", "--length", "3",
            "--max-walks", "5",
            "--fault-plan", '{"rules": [{"site": "bad", "kind": "io_error"}]}',
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_walk_with_resilience_flags(self, capsys):
        from repro.cli import main

        code = main([
            "walk", "--dataset", "tiny", "--engine", "tea-ooc",
            "--app", "exponential", "--length", "5", "--max-walks", "10",
            "--verify-checksums", "--retries", "3",
            "--fault-plan",
            '{"rules": [{"site": "trunk_read", "kind": "io_error",'
            ' "max_triggers": 1}]}',
        ])
        assert code == 0
