"""Second property-based suite: streams, sinks, deletions, batch engine."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.block_cache import BlockCache
from repro.core.deletions import TombstoneHPAT
from repro.core.weights import WeightModel
from repro.embeddings.link_prediction import auc_score
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import make_rng
from repro.walks.walker import WalkPath

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
        st.floats(min_value=0.0, max_value=1000.0),
    ),
    min_size=0,
    max_size=60,
)


@given(edge_lists)
def test_edge_stream_always_time_sorted(edges):
    stream = EdgeStream.from_edges(edges)
    assert stream.is_time_sorted()
    assert len(stream) == len(edges)


@given(edge_lists, st.floats(min_value=0, max_value=1000),
       st.floats(min_value=0, max_value=1000))
def test_interval_is_exact_filter(edges, a, b):
    lo, hi = min(a, b), max(a, b)
    stream = EdgeStream.from_edges(edges)
    sub = stream.interval(lo, hi)
    expected = sorted(t for _, _, t in edges if lo <= t <= hi)
    assert list(sub.time) == expected


@given(edge_lists, st.integers(min_value=1, max_value=10))
def test_batches_partition_stream(edges, batch_size):
    stream = EdgeStream.from_edges(edges)
    batches = list(stream.batches(batch_size))
    assert sum(len(b) for b in batches) == len(stream)
    rebuilt = np.concatenate([b.time for b in batches]) if batches else np.zeros(0)
    assert np.array_equal(rebuilt, stream.time)


@given(edge_lists)
def test_graph_roundtrip_preserves_multiset(edges):
    stream = EdgeStream.from_edges(edges)
    graph = TemporalGraph.from_stream(stream)
    back = graph.to_stream()
    assert sorted(zip(back.src, back.dst, back.time)) == sorted(
        zip(stream.src, stream.dst, stream.time)
    )


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=2, max_value=40),
    st.sets(st.integers(min_value=0, max_value=39), max_size=20),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_tombstones_never_sampled(degree, dead_positions, seed):
    dead_positions = {p for p in dead_positions if p < degree}
    if len(dead_positions) >= degree:
        return
    graph = TemporalGraph.from_edges(
        [(0, i + 1, float(i)) for i in range(degree)]
    )
    weights = WeightModel("linear_rank").compute(graph)
    index = TombstoneHPAT(graph, weights, rebuild_threshold=0.4)
    for p in dead_positions:
        index.delete_position(0, p)
    rng = make_rng(seed)
    for _ in range(200):
        assert index.sample(0, degree, rng) not in dead_positions


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
        min_size=1,
        max_size=10,
    )
)
def test_walk_sink_roundtrip(vertex_seqs):
    import tempfile
    from pathlib import Path

    walks = []
    for seq in vertex_seqs:
        hops = [(seq[0], None)]
        hops.extend((v, float(i + 1)) for i, v in enumerate(seq[1:]))
        walks.append(WalkPath(hops=hops))
    from repro.walks.sink import WalkSink, read_walks

    tmp = tempfile.TemporaryDirectory()
    directory = Path(tmp.name)
    for name in ("w.txt", "w.twalks"):
        path = directory / name
        with WalkSink(path, flush_threshold=3) as sink:
            for walk in walks:
                sink.append(walk)
        loaded = list(read_walks(path))
        assert [w.hops for w in loaded] == [w.hops for w in walks]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.tuples(st.text(min_size=1, max_size=3),
                       st.integers(min_value=1, max_value=32)),
             min_size=1, max_size=40),
    st.integers(min_value=64, max_value=2048),
)
def test_block_cache_never_exceeds_budget(operations, capacity):
    cache = BlockCache(capacity)
    for key, size in operations:
        cache.put(key, np.zeros(size))
        assert cache.nbytes <= capacity
    # Everything retrievable is what was last stored under that key.
    for key, _ in operations:
        value = cache.get(key)
        assert value is None or isinstance(value, np.ndarray)


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50),
    st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50),
)
def test_auc_bounds_and_antisymmetry(pos, neg):
    auc = auc_score(pos, neg)
    assert 0.0 <= auc <= 1.0
    flipped = auc_score(neg, pos)
    assert auc + flipped == np.float64(1.0) or abs(auc + flipped - 1.0) < 1e-9
