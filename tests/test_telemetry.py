"""Telemetry subsystem: registry, spans, exporters, and engine wiring."""

import json
import math

import pytest

from repro.engines import GraphWalkerEngine, TeaEngine, Workload
from repro.graph.datasets import load_dataset
from repro.telemetry import (
    BYTES_BUCKETS,
    LATENCY_BUCKETS,
    REPORT_SCHEMA,
    Histogram,
    MetricsRegistry,
    Tracer,
    build_run_report,
    format_stats_table,
    load_run_report,
    parse_prometheus,
    to_prometheus,
    validate_run_report,
    write_run_report,
)
from repro.walks.apps import APPLICATIONS


def _populated(seed_offset=0):
    r = MetricsRegistry()
    r.counter("a", "help a").inc(3 + seed_offset)
    r.counter("b").inc(10)
    r.gauge("g.last").set(5 + seed_offset)
    r.gauge("g.sum", agg="sum").set(2)
    r.gauge("g.max", agg="max").set(7 - seed_offset)
    h = r.histogram("h", "help h")
    for v in (0, 1, 2, 3, 100, 10**12):
        h.observe(v + seed_offset)
    return r


class TestRegistry:
    def test_get_or_create_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.histogram("h") is r.histogram("h")

    def test_kind_collision_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError):
            r.gauge("x")
        with pytest.raises(ValueError):
            r.histogram("x")

    def test_counter_and_gauge_values(self):
        r = MetricsRegistry()
        r.inc("c", 4)
        r.inc("c")
        assert r.counter_value("c") == 5
        assert r.counter_value("missing") == 0
        r.set_gauge("g", 1.5)
        assert r.gauge_value("g") == 1.5
        assert r.gauge_value("missing") is None

    def test_merge_associativity(self):
        # (a ⊕ b) ⊕ c  ==  a ⊕ (b ⊕ c) for counters/sum-max gauges/histograms.
        def build(*offsets):
            regs = [_populated(o) for o in offsets]
            return regs

        left = build(0, 1, 2)
        lhs = MetricsRegistry().merge(left[0]).merge(left[1]).merge(left[2])
        right = build(0, 1, 2)
        bc = MetricsRegistry().merge(right[1]).merge(right[2])
        rhs = MetricsRegistry().merge(right[0]).merge(bc)
        assert lhs.snapshot() == rhs.snapshot()

    def test_merge_gauge_aggregations(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("s", agg="sum").set(2)
        b.gauge("s", agg="sum").set(3)
        a.gauge("m", agg="max").set(2)
        b.gauge("m", agg="max").set(9)
        a.gauge("n", agg="min").set(2)
        b.gauge("n", agg="min").set(9)
        a.merge(b)
        assert a.gauge_value("s") == 5
        assert a.gauge_value("m") == 9
        assert a.gauge_value("n") == 2

    def test_merge_incompatible_histogram_schemes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", **LATENCY_BUCKETS)
        b_h = Histogram("h", **BYTES_BUCKETS)
        b._histograms["h"] = b_h
        with pytest.raises(ValueError, match="incompatible"):
            a.merge(b)


class TestHistogram:
    def test_bucket_boundaries_inclusive_upper(self):
        h = Histogram("h", start=1.0, growth=2.0, buckets=4)
        # bounds: 1, 2, 4, 8; bucket i covers (prev, bound_i]
        h.observe(1.0)   # bucket 0 (<= 1)
        h.observe(1.5)   # bucket 1
        h.observe(2.0)   # bucket 1 (inclusive upper)
        h.observe(8.0)   # bucket 3
        h.observe(9.0)   # overflow
        assert h.counts == [1, 2, 0, 1, 1]
        assert h.count == 5

    def test_zero_and_negative_to_underflow(self):
        h = Histogram("h")
        h.observe(0)
        h.observe(-5)
        assert h.zero_count == 2
        assert sum(h.counts) == 0
        assert h.count == 2

    def test_stats_track_min_max_mean(self):
        h = Histogram("h")
        for v in (1, 2, 3):
            h.observe(v)
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1 and h.max == 3

    def test_latency_scheme_covers_microseconds_to_seconds(self):
        h = Histogram("h", **LATENCY_BUCKETS)
        h.observe(2e-6)
        h.observe(1.0)
        assert sum(h.counts[:-1]) == 2  # neither under- nor overflowed

    def test_invalid_scheme(self):
        with pytest.raises(ValueError):
            Histogram("h", start=0.0)
        with pytest.raises(ValueError):
            Histogram("h", growth=1.0)


class TestSpans:
    def test_nesting_and_ordering(self):
        tracer = Tracer(enabled=True)
        with tracer.span("prepare"):
            with tracer.span("prepare.weights"):
                pass
            with tracer.span("prepare.index_build", structure="hpat"):
                pass
        with tracer.span("walk"):
            pass
        assert [r.name for r in tracer.roots] == ["prepare", "walk"]
        children = tracer.roots[0].children
        assert [c.name for c in children] == ["prepare.weights", "prepare.index_build"]
        assert children[1].attributes["structure"] == "hpat"
        # children are contained in the parent's time interval
        parent = tracer.roots[0]
        for child in children:
            assert parent.start <= child.start
            assert child.end <= parent.end

    def test_start_attribute_does_not_shadow_clock(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", start=12345) as span:
            pass
        assert span.attributes["start"] == 12345
        assert span.duration < 1.0  # wall clock, not perf_counter - 12345

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            span.set("k", 1)
        assert tracer.roots == []
        assert not tracer.sample_walk(0)

    def test_walk_sampling_one_in_n(self):
        tracer = Tracer(enabled=True, walk_sample_every=4)
        sampled = [i for i in range(12) if tracer.sample_walk(i)]
        assert sampled == [0, 4, 8]
        assert not Tracer(enabled=True, walk_sample_every=0).sample_walk(0)

    def test_phase_seconds_accumulates_reentry(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        assert set(tracer.phase_seconds()) == {"a"}

    def test_to_dicts_relative_start(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        doc = tracer.to_dicts()
        assert doc[0]["start"] == 0.0
        assert doc[0]["children"][0]["start"] >= 0.0

    def test_merge_adopts_roots(self):
        a, b = Tracer(), Tracer()
        with a.span("one"):
            pass
        with b.span("two"):
            pass
        a.merge(b)
        assert [r.name for r in a.roots] == ["one", "two"]


class TestPrometheus:
    def test_round_trip(self):
        r = _populated()
        parsed = parse_prometheus(to_prometheus(r))
        assert parsed["tea_a"] == {"type": "counter", "value": 3.0}
        assert parsed["tea_g_last"] == {"type": "gauge", "value": 5.0}
        hist = parsed["tea_h"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 6.0
        assert hist["sum"] == pytest.approx(10**12 + 106)
        # cumulative buckets end at the total observation count
        assert hist["buckets"]["+Inf"] == 6.0
        cumulative = list(hist["buckets"].values())
        assert cumulative == sorted(cumulative)

    def test_name_sanitisation(self):
        r = MetricsRegistry()
        r.counter("walk.steps-done").inc()
        text = to_prometheus(r)
        assert "tea_walk_steps_done 1" in text

    def test_special_float_values_round_trip(self):
        r = MetricsRegistry()
        r.gauge("pos_inf").set(float("inf"))
        r.gauge("neg_inf").set(float("-inf"))
        r.gauge("nan").set(float("nan"))
        text = to_prometheus(r)
        # repr() would emit 'inf'/'nan', which scrapers reject.
        assert "tea_pos_inf +Inf" in text
        assert "tea_neg_inf -Inf" in text
        assert "tea_nan NaN" in text
        parsed = parse_prometheus(text)
        assert parsed["tea_pos_inf"]["value"] == float("inf")
        assert parsed["tea_neg_inf"]["value"] == float("-inf")
        assert math.isnan(parsed["tea_nan"]["value"])

    def test_sanitisation_collisions_stay_distinct(self):
        # 'cache.hits' and 'cache hits' both flatten to tea_cache_hits;
        # the exposition must not silently merge them into one series.
        r = MetricsRegistry()
        r.counter("cache.hits").inc(1)
        r.counter("cache hits").inc(2)
        r.counter("cache-hits").inc(3)
        parsed = parse_prometheus(to_prometheus(r))
        values = {
            name: m["value"] for name, m in parsed.items()
            if m["type"] == "counter"
        }
        assert values == {
            "tea_cache_hits": 1.0,
            "tea_cache_hits_2": 2.0,
            "tea_cache_hits_3": 3.0,
        }

    def test_histogram_round_trip_after_registry_fold(self):
        # The per-worker discipline: private registries folded with
        # merge() must expose the same histogram as one shared registry.
        shards = []
        for offset in range(3):
            r = MetricsRegistry()
            h = r.histogram("lat", "fold me", start=0.001, growth=4.0,
                            buckets=8)
            for i in range(4):
                h.observe(0.0005 * (offset + 1) * (i + 1))
            shards.append(r)
        folded = MetricsRegistry()
        folded.histogram("lat", "fold me", start=0.001, growth=4.0,
                         buckets=8)
        for shard in shards:
            folded.merge(shard)
        direct = MetricsRegistry()
        d = direct.histogram("lat", "fold me", start=0.001, growth=4.0,
                             buckets=8)
        for offset in range(3):
            for i in range(4):
                d.observe(0.0005 * (offset + 1) * (i + 1))
        assert (parse_prometheus(to_prometheus(folded))["tea_lat"]
                == parse_prometheus(to_prometheus(direct))["tea_lat"])


class TestRunReport:
    def _doc(self):
        tracer = Tracer(enabled=True)
        with tracer.span("prepare"):
            pass
        return build_run_report(_populated(), tracer, meta={"engine": "tea"})

    def test_schema_and_validation(self):
        doc = self._doc()
        assert doc["schema"] == REPORT_SCHEMA
        assert validate_run_report(doc) == []

    def test_json_serialisable(self):
        doc = self._doc()
        assert json.loads(json.dumps(doc)) == doc

    @pytest.mark.parametrize(
        "mutate,needle",
        [
            (lambda d: d.update(schema="nope"), "schema"),
            (lambda d: d.pop("counters"), "counters"),
            (lambda d: d["counters"].update(bad="x"), "not numeric"),
            (lambda d: d["histograms"]["h"]["counts"].pop(), "length mismatch"),
            (lambda d: d["histograms"]["h"].update(count=999), "sum to count"),
            (lambda d: d["spans"][0].pop("name"), "missing 'name'"),
        ],
    )
    def test_corrupt_documents_are_named(self, mutate, needle):
        doc = self._doc()
        mutate(doc)
        problems = validate_run_report(doc)
        assert problems and any(needle in p for p in problems)

    def test_write_and_load(self, tmp_path):
        path = tmp_path / "report.json"
        doc = write_run_report(path, self._doc())
        assert load_run_report(path) == doc

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other"}')
        with pytest.raises(ValueError, match="invalid run report"):
            load_run_report(path)

    def test_stats_table_renders_all_sections(self):
        text = format_stats_table(self._doc())
        for fragment in ("counters:", "gauges:", "histograms:", "spans:",
                         "engine=tea", "prepare"):
            assert fragment in text


class TestEngineWiring:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("tiny", seed=0)

    def test_every_run_returns_populated_registry(self, graph):
        spec = APPLICATIONS["exponential"]
        engine = TeaEngine(graph, spec)
        result = engine.run(Workload(max_length=10, max_walks=20), seed=1)
        reg = result.registry
        assert reg.counter_value("sampling.steps") == result.counters.steps
        assert reg.counter_value("walk.walks") == 20
        assert reg.gauge_value("memory.bytes") == result.memory.total
        assert "walk.length" in reg
        assert validate_run_report(result.run_report()) == []

    def test_trace_sampling_emits_walk_spans(self, graph):
        spec = APPLICATIONS["exponential"]
        engine = TeaEngine(graph, spec)
        tracer = Tracer(enabled=True, walk_sample_every=8)
        result = engine.run(
            Workload(max_length=10, max_walks=16), seed=1, tracer=tracer
        )
        walk_spans = tracer.find("walk.one")
        assert len(walk_spans) == 2  # walks 0 and 8
        for span in walk_spans:
            assert "length" in span.attributes
            assert span.duration >= 0
        # per-step histograms exist only because walks were traced
        hist = result.registry._histograms["walk.step_seconds"]
        assert hist.count > 0

    def test_figure2_edges_evaluated_ordering(self, graph):
        # The paper's Figure 2 claim on exponential weights: TEA's
        # edges-evaluated-per-step stays near-constant while the
        # baseline's grows with candidate-set size — the registries of
        # two runs must reproduce that ordering.
        spec = APPLICATIONS["exponential"]
        workload = Workload(max_length=20, max_walks=40)
        tea = TeaEngine(graph, spec).run(workload, seed=3)
        gw = GraphWalkerEngine(graph, spec).run(workload, seed=3)

        def edges_per_step(result):
            reg = result.registry
            return (reg.counter_value("sampling.edges_evaluated")
                    / reg.counter_value("sampling.steps"))

        assert edges_per_step(tea) < edges_per_step(gw)

    def test_per_worker_merge_matches_single_registry(self, graph):
        # Per-worker discipline: N registries merged == one shared one.
        spec = APPLICATIONS["exponential"]
        workload = Workload(max_length=10, max_walks=10)
        shared = MetricsRegistry()
        for seed in (0, 1, 2):
            TeaEngine(graph, spec).run(workload, seed=seed, registry=shared)
        folded = MetricsRegistry()
        for seed in (0, 1, 2):
            r = TeaEngine(graph, spec).run(workload, seed=seed)
            folded.merge(r.registry)
        s, f = shared.snapshot(), folded.snapshot()
        assert s["counters"] == f["counters"]
        assert s["histograms"]["walk.length"] == f["histograms"]["walk.length"]


class TestCli:
    def test_walk_stats_and_report_replay(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "run.json"
        prom = tmp_path / "run.prom"
        assert main([
            "walk", "--dataset", "tiny", "--app", "exponential",
            "--length", "10", "--max-walks", "30", "--stats",
            "--trace-out", str(report), "--prom-out", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out and "spans:" in out
        doc = load_run_report(report)
        assert doc["meta"]["engine"] == "tea-hpat"
        parsed = parse_prometheus(prom.read_text())
        assert parsed["tea_sampling_steps"]["value"] > 0
        assert main(["stats", "--report", str(report)]) == 0
        assert "walk.length" in capsys.readouterr().out

    def test_stats_report_invalid_exits_nonzero(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["stats", "--report", str(bad)]) == 1

    @pytest.mark.parametrize(
        "engine",
        ["tea", "tea-batch", "tea-pat", "tea-its", "tea-ooc",
         "graphwalker", "knightking"],
    )
    def test_all_engines_emit_populated_registry(self, engine, tmp_path):
        from repro.cli import main

        report = tmp_path / f"{engine}.json"
        assert main([
            "walk", "--dataset", "tiny", "--app", "exponential",
            "--length", "8", "--max-walks", "10", "--engine", engine,
            "--trace-out", str(report),
        ]) == 0
        doc = load_run_report(report)
        assert doc["counters"]["sampling.steps"] > 0
        assert doc["counters"]["walk.walks"] == 10
        assert any(doc["spans"])
