"""Hierarchical PAT: layout, sampling distribution, index ablation."""

import numpy as np
import pytest

from repro.core.builder import build_hpat, hpat_layout
from repro.core.weights import WeightModel
from repro.exceptions import EmptyCandidateSetError
from repro.rng import make_rng
from repro.sampling.counters import CostCounters
from tests.conftest import chisquare_ok


@pytest.fixture
def toy_hpat(toy_graph):
    weights = WeightModel("linear_rank").compute(toy_graph)
    return build_hpat(toy_graph, weights), weights


class TestLayout:
    def test_level_counts(self):
        degrees = np.array([0, 1, 2, 7, 8])
        lvl_base, lvl_ptr, total = hpat_layout(degrees)
        # K_v = floor(log2 d): 0, 0, 1, 2, 3 stored levels (k >= 1).
        assert list(np.diff(lvl_base)) == [0, 0, 1, 2, 3]
        # entries: d=2 → 2; d=7 → 6 + 4; d=8 → 8 + 8 + 8.
        assert total == 2 + 10 + 24

    def test_vertex7_level_tables(self, toy_graph, toy_hpat):
        """Figure 6b: vertex 7 (degree 7) has level-1 tables covering 6
        edges and one level-2 table covering 4."""
        hpat, _ = toy_hpat
        start1 = hpat.level_table_start(7, 1)
        start2 = hpat.level_table_start(7, 2)
        assert start2 - start1 == 6

    def test_space_is_d_log_d(self, medium_graph):
        weights = WeightModel("uniform").compute(medium_graph)
        hpat = build_hpat(medium_graph, weights)
        d = medium_graph.degrees().astype(float)
        bound = (d * (np.log2(np.maximum(d, 2)) + 1)).sum() * 16 * 1.2
        assert hpat.prob.nbytes + hpat.alias.nbytes <= bound + 1024

    def test_memory_breakdown(self, toy_hpat):
        hpat, _ = toy_hpat
        breakdown = hpat.memory_breakdown()
        assert breakdown["aux_index"] > 0
        assert breakdown["alias_tables"] > 0


class TestSampling:
    @pytest.mark.parametrize("s", [1, 2, 3, 4, 5, 6, 7])
    def test_distribution_all_candidate_sizes(self, toy_graph, toy_hpat, s):
        hpat, weights = toy_hpat
        lo = toy_graph.indptr[7]
        probs = weights[lo : lo + s] / weights[lo : lo + s].sum()
        rng = make_rng(s + 100)
        counts = np.zeros(s)
        for _ in range(25000):
            counts[hpat.sample(7, s, rng)] += 1
        assert chisquare_ok(counts, probs), f"s={s}"

    @pytest.mark.parametrize("use_index", [True, False])
    def test_index_ablation_same_distribution(self, toy_graph, toy_hpat, use_index):
        """Figure 11: the auxiliary index changes speed, not statistics."""
        hpat, weights = toy_hpat
        lo = toy_graph.indptr[7]
        probs = weights[lo : lo + 5] / weights[lo : lo + 5].sum()
        rng = make_rng(11)
        counts = np.zeros(5)
        for _ in range(25000):
            counts[hpat.sample(7, 5, rng, use_index=use_index)] += 1
        assert chisquare_ok(counts, probs)

    def test_without_aux_built(self, toy_graph):
        weights = WeightModel("linear_rank").compute(toy_graph)
        hpat = build_hpat(toy_graph, weights, with_aux_index=False)
        assert hpat.aux is None
        rng = make_rng(0)
        assert 0 <= hpat.sample(7, 7, rng) < 7

    def test_empty_candidate_rejected(self, toy_hpat):
        hpat, _ = toy_hpat
        with pytest.raises(EmptyCandidateSetError):
            hpat.sample(7, 0, make_rng(0))

    def test_exhaustive_medium_graph(self, medium_graph):
        weights = WeightModel("exponential", scale=20.0).compute(medium_graph)
        hpat = build_hpat(medium_graph, weights)
        rng = make_rng(5)
        degrees = medium_graph.degrees()
        vs = np.argsort(degrees)[-3:]
        for v in vs:
            d = int(degrees[v])
            lo = medium_graph.indptr[v]
            for s in {1, 3, d // 3, d - 1, d}:
                if s < 1:
                    continue
                probs = weights[lo : lo + s] / weights[lo : lo + s].sum()
                counts = np.zeros(s)
                for _ in range(8000):
                    counts[hpat.sample(int(v), s, rng)] += 1
                assert chisquare_ok(counts, probs), (v, s)

    def test_cost_is_loglog(self, medium_graph):
        """Section 4.3: HPAT sampling is O(log log D) — far under log D."""
        weights = WeightModel("uniform").compute(medium_graph)
        hpat = build_hpat(medium_graph, weights)
        v = int(np.argmax(medium_graph.degrees()))
        d = medium_graph.out_degree(v)
        counters = CostCounters()
        rng = make_rng(0)
        n = 500
        for _ in range(n):
            counters.record_step()
            hpat.sample(v, d - 1, rng, counters)  # d-1 → multi-block
        # Probes bounded by log2(popcount) + alias draw ≈ log log D + 1.
        assert counters.edges_per_step <= np.log2(np.log2(d)) + 4

    def test_candidate_weight(self, toy_hpat):
        hpat, _ = toy_hpat
        assert hpat.candidate_weight(7, 7) == 28.0


class TestAgainstPAT:
    def test_same_distribution_as_pat(self, medium_graph):
        """PAT and HPAT sample identical distributions (hybrid invariant)."""
        from repro.core.builder import build_pat

        weights = WeightModel("linear_rank").compute(medium_graph)
        hpat = build_hpat(medium_graph, weights)
        pat = build_pat(medium_graph, weights)
        v = int(np.argmax(medium_graph.degrees()))
        s = medium_graph.out_degree(v) // 2 + 1
        lo = medium_graph.indptr[v]
        probs = weights[lo : lo + s] / weights[lo : lo + s].sum()
        rng = make_rng(2)
        for index in (hpat, pat):
            counts = np.zeros(s)
            for _ in range(15000):
                counts[index.sample(v, s, rng)] += 1
            assert chisquare_ok(counts, probs)
