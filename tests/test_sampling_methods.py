"""ITS, rejection, and full-scan samplers: distribution and cost."""

import numpy as np
import pytest

from repro.exceptions import EmptyCandidateSetError, SamplingBudgetExceeded
from repro.rng import make_rng
from repro.sampling.counters import CostCounters
from repro.sampling.fullscan import full_scan_sample
from repro.sampling.its import ITSSampler
from repro.sampling.rejection import RejectionSampler
from tests.conftest import chisquare_ok

WEIGHTS_DESC = np.array([7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0])  # Figure 5


def empirical(sample_fn, size, n=30000, seed=0):
    rng = make_rng(seed)
    counts = np.zeros(size)
    for _ in range(n):
        counts[sample_fn(rng)] += 1
    return counts


class TestITSSampler:
    @pytest.mark.parametrize("s", [1, 3, 7])
    def test_distribution(self, s):
        sampler = ITSSampler(WEIGHTS_DESC)
        counts = empirical(lambda rng: sampler.sample(s, rng), s)
        assert chisquare_ok(counts, WEIGHTS_DESC[:s] / WEIGHTS_DESC[:s].sum())

    def test_candidate_weight(self):
        sampler = ITSSampler(WEIGHTS_DESC)
        assert sampler.candidate_weight(3) == 18.0

    def test_empty_rejected(self):
        sampler = ITSSampler(WEIGHTS_DESC)
        with pytest.raises(EmptyCandidateSetError):
            sampler.sample(0, make_rng(0))

    def test_probe_cost_logarithmic(self):
        sampler = ITSSampler(np.ones(1024))
        counters = CostCounters()
        rng = make_rng(1)
        for _ in range(100):
            sampler.sample(1024, rng, counters)
        assert counters.binary_search_probes / 100 <= 11.0  # log2(1024)+1


class TestRejectionSampler:
    @pytest.mark.parametrize("s", [1, 4, 7])
    def test_distribution(self, s):
        sampler = RejectionSampler(WEIGHTS_DESC)
        counts = empirical(lambda rng: sampler.sample(s, rng), s)
        assert chisquare_ok(counts, WEIGHTS_DESC[:s] / WEIGHTS_DESC[:s].sum())

    def test_expected_trials_formula(self):
        """Section 3.1: skewed exponential weights blow up trial counts."""
        t = np.arange(1, 8)[::-1].astype(float)
        w = np.exp(t)  # weights e^7 .. e^1, time-descending
        sampler = RejectionSampler(w)
        expected = 7 * np.exp(7) / np.exp(np.arange(1, 8)).sum()
        assert sampler.expected_trials(7) == pytest.approx(expected)
        assert sampler.expected_trials(7) > 4  # "drastically squeezed accept area"

    def test_trial_counting_matches_expectation(self):
        w = np.exp(np.arange(6, 0, -1).astype(float))
        sampler = RejectionSampler(w)
        counters = CostCounters()
        rng = make_rng(5)
        n = 4000
        for _ in range(n):
            sampler.sample(6, rng, counters)
        measured = counters.rejection_trials / n
        assert measured == pytest.approx(sampler.expected_trials(6), rel=0.15)

    def test_strict_budget(self):
        w = np.array([1e9, 1.0])[::-1]  # max weight is huge vs the other
        sampler = RejectionSampler(w[::-1], max_trials=1, strict=True)
        # With max_trials=1 and extreme skew, acceptance is overwhelmingly
        # unlikely for the small item; eventually a budget error surfaces.
        rng = make_rng(2)
        with pytest.raises(SamplingBudgetExceeded):
            for _ in range(1000):
                sampler.sample(2, rng)

    def test_fallback_is_exact(self):
        w = np.array([1e9, 1.0])
        sampler = RejectionSampler(w, max_trials=1, strict=False)
        counts = empirical(lambda rng: sampler.sample(2, rng), 2, n=20000)
        assert chisquare_ok(counts, w / w.sum())

    def test_empty_rejected(self):
        with pytest.raises(EmptyCandidateSetError):
            RejectionSampler(WEIGHTS_DESC).sample(0, make_rng(0))


class TestFullScan:
    @pytest.mark.parametrize("s", [1, 4, 7])
    def test_distribution_static(self, s):
        counts = empirical(
            lambda rng: full_scan_sample(WEIGHTS_DESC, s, rng), s
        )
        assert chisquare_ok(counts, WEIGHTS_DESC[:s] / WEIGHTS_DESC[:s].sum())

    def test_dynamic_weight_fn(self):
        times = np.array([7.0, 6.0, 5.0])
        counts = empirical(
            lambda rng: full_scan_sample(
                None, 3, rng,
                weight_fn=lambda t: np.exp(t - 4.0),
                times_time_desc=times,
            ),
            3,
        )
        w = np.exp(times - 4.0)
        assert chisquare_ok(counts, w / w.sum())

    def test_scan_cost_is_candidate_size(self):
        counters = CostCounters()
        rng = make_rng(0)
        full_scan_sample(WEIGHTS_DESC, 7, rng, counters)
        assert counters.edges_evaluated == 7

    def test_weight_fn_requires_times(self):
        with pytest.raises(ValueError):
            full_scan_sample(WEIGHTS_DESC, 3, make_rng(0), weight_fn=lambda t: t)

    def test_empty_rejected(self):
        with pytest.raises(EmptyCandidateSetError):
            full_scan_sample(WEIGHTS_DESC, 0, make_rng(0))
