"""Trunk arithmetic: binary decomposition, trunkSize rule, level widths."""

import math

import pytest

from repro.core.trunks import (
    binary_decompose,
    decompose_cuts,
    level_width,
    num_levels,
    pat_trunk_size,
)


class TestBinaryDecompose:
    def test_paper_example_size7(self):
        """Section 3.3: 7 = 4 + 2 + 1 → trunks at offsets 0, 4, 6."""
        assert binary_decompose(7) == [(2, 0), (1, 4), (0, 6)]

    def test_paper_example_size3(self):
        """Γt=4(7) = {6,5,4}: trunks {6,5} (level 1) and {4} (level 0)."""
        assert binary_decompose(3) == [(1, 0), (0, 2)]

    def test_power_of_two_single_block(self):
        assert binary_decompose(8) == [(3, 0)]

    def test_zero(self):
        assert binary_decompose(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            binary_decompose(-1)

    @pytest.mark.parametrize("size", list(range(1, 200)) + [1023, 1024, 1025, 65537])
    def test_blocks_cover_and_align(self, size):
        blocks = binary_decompose(size)
        total = 0
        prev_level = None
        for level, offset in blocks:
            assert offset == total, "blocks must be contiguous from 0"
            assert offset % (1 << level) == 0, "blocks must be aligned"
            if prev_level is not None:
                assert level < prev_level, "levels strictly decrease"
            prev_level = level
            total += 1 << level
        assert total == size
        assert len(blocks) == bin(size).count("1")

    def test_cuts_match_blocks(self):
        for size in range(1, 100):
            blocks = binary_decompose(size)
            cuts = decompose_cuts(size)
            assert cuts == [off + (1 << k) for k, off in blocks]
            assert cuts[-1] == size


class TestPatTrunkSize:
    def test_in_memory_rule_sqrt(self):
        """Section 3.2: trunkSize = floor(sqrt(D)) in memory."""
        for d in (1, 2, 4, 10, 100, 1000, 12345):
            assert pat_trunk_size(d) == math.isqrt(d)

    def test_memory_limited_rule(self):
        """Out-of-core: as small as possible (paper uses 10 on twitter)."""
        assert pat_trunk_size(10**6, memory_limited=True, min_size=10) == 10

    def test_zero_degree(self):
        assert pat_trunk_size(0) == 1


class TestLevels:
    def test_num_levels(self):
        assert num_levels(0) == 0
        assert num_levels(1) == 1
        assert num_levels(7) == 3   # K = floor(log2 7) = 2 → levels 0..2
        assert num_levels(8) == 4

    def test_level_width(self):
        # d=7: level 0 covers 7, level 1 covers 6, level 2 covers 4.
        assert level_width(7, 0) == 7
        assert level_width(7, 1) == 6
        assert level_width(7, 2) == 4
        assert level_width(7, 3) == 0
