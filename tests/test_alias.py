"""Alias tables: single and batched lock-step construction."""

import numpy as np
import pytest

from repro.rng import make_rng
from repro.sampling.alias import (
    AliasTable,
    alias_draw,
    build_alias_arrays,
    build_alias_arrays_batch,
)
from tests.conftest import chisquare_ok


def alias_exact_probs(prob: np.ndarray, alias: np.ndarray) -> np.ndarray:
    """Exact item probabilities implied by an alias table."""
    n = prob.size
    out = np.zeros(n)
    for cell in range(n):
        out[cell] += prob[cell] / n
        out[alias[cell]] += (1.0 - prob[cell]) / n
    return out


class TestSingleConstruction:
    @pytest.mark.parametrize(
        "weights",
        [
            [1.0],
            [1.0, 1.0],
            [7.0, 6.0, 5.0],             # Figure 3c's trunk weights
            [1.0, 100.0],
            [0.0, 1.0, 0.0, 2.0],        # zero-weight items allowed
            list(range(1, 33)),
        ],
    )
    def test_exact_probabilities(self, weights):
        w = np.asarray(weights, dtype=float)
        prob, alias = build_alias_arrays(w)
        expected = w / w.sum()
        assert np.allclose(alias_exact_probs(prob, alias), expected, atol=1e-12)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_alias_arrays(np.array([]))
        with pytest.raises(ValueError):
            build_alias_arrays(np.array([0.0, 0.0]))

    def test_prob_in_unit_interval(self):
        rng = make_rng(0)
        w = rng.uniform(0.01, 5.0, 100)
        prob, alias = build_alias_arrays(w)
        assert np.all(prob >= 0.0) and np.all(prob <= 1.0 + 1e-9)
        assert np.all((alias >= 0) & (alias < 100))


class TestBatchConstruction:
    def test_matches_single(self):
        rng = make_rng(3)
        rows = rng.uniform(0.1, 10.0, size=(50, 8))
        bprob, balias = build_alias_arrays_batch(rows)
        for i in range(50):
            expected = rows[i] / rows[i].sum()
            assert np.allclose(
                alias_exact_probs(bprob[i], balias[i]), expected, atol=1e-10
            ), f"row {i}"

    @pytest.mark.parametrize("width", [1, 2, 3, 4, 7, 8, 16, 33])
    def test_widths(self, width):
        rng = make_rng(width)
        rows = rng.uniform(0.01, 1.0, size=(20, width))
        prob, alias = build_alias_arrays_batch(rows)
        for i in range(20):
            expected = rows[i] / rows[i].sum()
            assert np.allclose(alias_exact_probs(prob[i], alias[i]), expected, atol=1e-10)

    def test_extreme_skew(self):
        rows = np.array([[1e-12, 1.0, 1e-12, 1e-12]])
        prob, alias = build_alias_arrays_batch(rows)
        assert np.allclose(
            alias_exact_probs(prob[0], alias[0]), rows[0] / rows[0].sum(), atol=1e-10
        )

    def test_uniform_rows_trivial(self):
        rows = np.ones((5, 4))
        prob, alias = build_alias_arrays_batch(rows)
        assert np.allclose(prob, 1.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            build_alias_arrays_batch(np.ones(5))
        with pytest.raises(ValueError):
            build_alias_arrays_batch(np.ones((2, 0)))
        with pytest.raises(ValueError):
            build_alias_arrays_batch(np.zeros((2, 3)))

    def test_zero_weight_items_within_rows(self):
        rows = np.array([[0.0, 2.0, 0.0, 2.0], [1.0, 0.0, 0.0, 3.0]])
        prob, alias = build_alias_arrays_batch(rows)
        for i in range(2):
            assert np.allclose(
                alias_exact_probs(prob[i], alias[i]), rows[i] / rows[i].sum(), atol=1e-12
            )


class TestDraws:
    def test_empirical_distribution(self):
        w = np.array([7.0, 6.0, 5.0, 4.0])
        table = AliasTable.from_weights(w)
        rng = make_rng(9)
        counts = np.zeros(4)
        for _ in range(40000):
            counts[table.draw(rng)] += 1
        assert chisquare_ok(counts, w / w.sum())

    def test_flat_slice_draws(self):
        # Two tables stored back to back; the slice selects the second.
        w1, w2 = np.array([1.0, 1.0]), np.array([1.0, 3.0])
        p1, a1 = build_alias_arrays(w1)
        p2, a2 = build_alias_arrays(w2)
        prob = np.concatenate([p1, p2])
        alias = np.concatenate([a1, a2])
        rng = make_rng(4)
        counts = np.zeros(2)
        for _ in range(20000):
            counts[alias_draw(prob, alias, rng, lo=2, hi=4)] += 1
        assert chisquare_ok(counts, w2 / w2.sum())

    def test_counter_accounting(self):
        from repro.sampling.counters import CostCounters

        table = AliasTable.from_weights([1.0, 2.0])
        counters = CostCounters()
        rng = make_rng(0)
        for _ in range(10):
            table.draw(rng, counters)
        assert counters.alias_draws == 10
        assert counters.edges_evaluated == 10

    def test_nbytes(self):
        table = AliasTable.from_weights([1.0, 2.0, 3.0])
        assert table.nbytes() == 3 * 8 * 2
        assert len(table) == 3
