"""Temporal reachability: exact earliest-arrival vs walk estimates."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytics.reachability import (
    earliest_arrival_times,
    temporal_reachability,
    walk_reachability_estimate,
)
from repro.graph.edge_stream import EdgeStream
from repro.graph.generators import toy_commute_graph
from repro.graph.temporal_graph import TemporalGraph


class TestEarliestArrival:
    def test_chain(self):
        graph = TemporalGraph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        arrival = earliest_arrival_times(graph, 0)
        assert list(arrival) == [-np.inf, 1.0, 2.0, 3.0]

    def test_time_order_blocks_path(self):
        # 1 -> 2 happens BEFORE 0 -> 1, so 2 is unreachable from 0.
        graph = TemporalGraph.from_edges([(0, 1, 5.0), (1, 2, 3.0)])
        arrival = earliest_arrival_times(graph, 0)
        assert arrival[1] == 5.0
        assert arrival[2] == np.inf

    def test_equal_times_blocked(self):
        """Strict increase: consecutive edges at the same time don't chain."""
        graph = TemporalGraph.from_edges([(0, 1, 2.0), (1, 2, 2.0)])
        arrival = earliest_arrival_times(graph, 0)
        assert arrival[2] == np.inf

    def test_earliest_among_alternatives(self):
        graph = TemporalGraph.from_edges(
            [(0, 1, 1.0), (0, 1, 5.0), (1, 2, 3.0)]
        )
        arrival = earliest_arrival_times(graph, 0)
        assert arrival[1] == 1.0
        assert arrival[2] == 3.0  # via the early 0->1

    def test_start_time_constraint(self):
        graph = TemporalGraph.from_edges([(0, 1, 1.0), (0, 2, 5.0)])
        arrival = earliest_arrival_times(graph, 0, start_time=2.0)
        assert arrival[1] == np.inf  # edge at t=1 <= 2 unusable
        assert arrival[2] == 5.0

    def test_toy_graph_matches_paper(self):
        """From vertex 9 (the paper's example), only 9→7→{4,5,6} style
        paths exist; vertex 2 is not temporally reachable."""
        graph = TemporalGraph.from_stream(toy_commute_graph())
        reach = temporal_reachability(graph, 9)
        # 9 -> 7 at t=4 -> then 7's edges with t > 4: vertices 4, 5, 6.
        for v in (9, 7, 4, 5, 6):
            assert reach[v], v
        assert not reach[2]

    def test_source_out_of_range(self):
        graph = TemporalGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(IndexError):
            earliest_arrival_times(graph, 5)

    def test_source_always_reachable(self):
        graph = TemporalGraph.from_edges([(0, 1, 1.0)], num_vertices=3)
        assert temporal_reachability(graph, 2)[2]


class TestWalkEstimate:
    def test_within_exact_reachability(self, small_graph):
        source = int(np.argmax(small_graph.degrees()))
        exact = temporal_reachability(small_graph, source)
        visits = walk_reachability_estimate(
            small_graph, source, num_walks=300, seed=0
        )
        for v in visits:
            assert exact[v], f"walk visited temporally unreachable vertex {v}"

    def test_source_always_visited(self, small_graph):
        visits = walk_reachability_estimate(small_graph, 0, num_walks=50, seed=1)
        assert visits[0] == 1.0

    def test_validation(self, small_graph):
        with pytest.raises(ValueError):
            walk_reachability_estimate(small_graph, 0, num_walks=0)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
            st.floats(min_value=0, max_value=50),
        ),
        min_size=1,
        max_size=40,
    ),
    st.integers(min_value=0, max_value=7),
)
def test_earliest_arrival_matches_bruteforce(edges, source):
    """One-pass algorithm ≡ exhaustive temporal-path search (small n)."""
    graph = TemporalGraph.from_stream(
        EdgeStream.from_edges(edges), num_vertices=8
    )
    fast = earliest_arrival_times(graph, source)

    # Brute force: Bellman-Ford-style relaxation until fixpoint.
    slow = np.full(8, np.inf)
    slow[source] = -np.inf
    changed = True
    while changed:
        changed = False
        for u, v, t in edges:
            if t > slow[u] and t < slow[v]:
                slow[v] = t
                changed = True
    assert np.array_equal(fast, slow)


class TestTemporalCloseness:
    def test_chain_ordering(self):
        from repro.analytics.reachability import temporal_closeness

        graph = TemporalGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]
        )
        closeness = temporal_closeness(graph)
        # Earlier chain positions reach more vertices sooner.
        assert closeness[0] > closeness[1] > closeness[2] > closeness[3] == 0.0

    def test_sources_subset(self, small_graph):
        from repro.analytics.reachability import temporal_closeness

        scores = temporal_closeness(small_graph, sources=np.array([0, 1]))
        assert scores.shape == (small_graph.num_vertices,)
        assert np.all(scores[2:] == 0.0)

    def test_empty_graph(self):
        from repro.analytics.reachability import temporal_closeness
        from repro.graph.edge_stream import EdgeStream

        graph = TemporalGraph.from_stream(EdgeStream.empty(), num_vertices=4)
        assert np.all(temporal_closeness(graph) == 0.0)
