"""Re-entry block cache (§4.1) and its out-of-core integration."""

import numpy as np
import pytest

from repro.core.block_cache import BlockCache
from repro.core.builder import build_pat
from repro.core.outofcore import OutOfCorePAT, TrunkStore
from repro.core.weights import WeightModel
from repro.engines import TeaOutOfCoreEngine, Workload
from repro.rng import make_rng
from repro.sampling.counters import CostCounters
from repro.walks.apps import exponential_walk


class TestBlockCache:
    def test_hit_after_put(self):
        cache = BlockCache(1024)
        block = np.arange(8, dtype=np.float64)
        assert cache.get("a") is None
        cache.put("a", block)
        assert np.array_equal(cache.get("a"), block)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = BlockCache(3 * 64)
        for key in "abc":
            cache.put(key, np.zeros(8))  # 64 bytes each
        cache.get("a")  # refresh a
        cache.put("d", np.zeros(8))  # evicts b (least recently used)
        assert cache.get("a") is not None
        assert cache.get("b") is None
        assert cache.stats.evictions == 1
        assert cache.stats.bytes_in == 4 * 64
        assert cache.stats.bytes_evicted == 64

    def test_snapshot_full_precision_hit_rate(self):
        cache = BlockCache(1024)
        cache.put("a", np.zeros(8))
        cache.get("a")
        cache.get("a")
        for _ in range(7):
            cache.get("missing")
        # 2 hits / 9 lookups: 0.2222... must survive the snapshot
        # unrounded (display rounding lives in pretty()).
        snap = cache.stats.snapshot()
        assert snap["hit_rate"] == cache.stats.hit_rate == 2 / 9
        assert snap["bytes_in"] == 64
        assert snap["bytes_evicted"] == 0
        assert "0.2222" in cache.stats.pretty()

    def test_stats_publish_to_registry(self):
        from repro.telemetry import MetricsRegistry

        cache = BlockCache(1024)
        cache.put("a", np.zeros(8))
        cache.get("a")
        cache.get("b")
        registry = MetricsRegistry()
        cache.stats.publish(registry)
        assert registry.counter_value("cache.hits") == 1
        assert registry.counter_value("cache.misses") == 1
        assert registry.counter_value("cache.bytes_in") == 64

    def test_byte_budget_respected(self):
        cache = BlockCache(100)
        cache.put("big", np.zeros(100))  # 800 bytes > budget: not stored
        assert cache.get("big") is None
        assert cache.nbytes == 0

    def test_tuple_values(self):
        cache = BlockCache(1024)
        cache.put("t", (np.zeros(4), np.ones(4, dtype=np.int64)))
        a, b = cache.get("t")
        assert a.size == 4 and b.size == 4
        assert cache.nbytes == 64

    def test_disabled_cache(self):
        cache = BlockCache(0)
        cache.put("a", np.zeros(4))
        assert cache.get("a") is None
        assert not cache.enabled
        assert len(cache) == 0

    def test_overwrite_same_key(self):
        cache = BlockCache(1024)
        cache.put("a", np.zeros(4))
        cache.put("a", np.zeros(8))
        assert cache.nbytes == 64
        assert len(cache) == 1

    def test_clear(self):
        cache = BlockCache(1024)
        cache.put("a", np.zeros(4))
        cache.clear()
        assert cache.get("a") is None
        assert cache.nbytes == 0

    def test_admitted_blocks_are_read_only(self):
        cache = BlockCache(1024)
        cache.put("a", np.zeros(4))
        block = cache.get("a")
        with pytest.raises(ValueError):
            block[0] = 1.0

    def test_tuple_members_are_read_only(self):
        cache = BlockCache(1024)
        cache.put("t", (np.zeros(4), np.ones(4, dtype=np.int64)))
        prob, alias = cache.get("t")
        with pytest.raises(ValueError):
            prob[0] = 1.0
        with pytest.raises(ValueError):
            alias[0] = 1

    def test_scan_resistance(self):
        """A twice-touched block survives a one-pass scan that would
        flush a plain LRU of the same capacity."""
        cache = BlockCache(4 * 64)
        cache.put("hot", np.zeros(8))
        cache.get("hot")  # second touch: promoted to protected
        for i in range(16):  # scan 4x the capacity in one-touch blocks
            cache.put(f"scan-{i}", np.zeros(8))
        assert cache.get("hot") is not None
        assert "scan-0" not in cache  # scan victims churned in probation

    def test_promotion_counted(self):
        cache = BlockCache(1024)
        cache.put("a", np.zeros(8))
        cache.get("a")
        cache.get("a")
        assert cache.stats.promotions == 1  # only the probation->protected move

    def test_pinned_blocks_survive_eviction(self):
        cache = BlockCache(2 * 64)
        cache.put("pinned", np.zeros(8), pin=True)
        for i in range(8):
            cache.put(f"fill-{i}", np.zeros(8))
        assert "pinned" in cache
        cache.unpin("pinned")
        for i in range(8):
            cache.put(f"more-{i}", np.zeros(8))
        assert "pinned" not in cache

    def test_pinned_bytes_may_exceed_budget_transiently(self):
        cache = BlockCache(64)
        cache.put("a", np.zeros(8), pin=True)
        cache.put("b", np.zeros(8), pin=True)
        assert cache.nbytes == 128  # nothing evictable: budget overshoots
        cache.unpin("a")
        assert cache.nbytes == 64

    def test_publish_includes_served_promotions_hit_rate(self):
        from repro.telemetry import MetricsRegistry

        cache = BlockCache(1024)
        cache.put("a", np.zeros(8))
        cache.get("a")
        cache.get("a")
        registry = MetricsRegistry()
        cache.stats.publish(registry)
        assert registry.counter_value("cache.bytes_served") == 128
        assert registry.counter_value("cache.promotions") == 1
        assert registry.gauge_value("cache.hit_rate") == 1.0

    def test_oversized_put_rejected_without_side_effects(self):
        cache = BlockCache(128)
        cache.put("small", np.zeros(8))
        cache.put("huge", np.zeros(1000))  # 8000 bytes > capacity
        assert cache.get("huge") is None
        assert cache.get("small") is not None  # nothing was evicted for it
        assert cache.stats.bytes_in == 64
        assert cache.stats.evictions == 0


class TestOutOfCoreIntegration:
    @pytest.fixture
    def cached_ooc(self, medium_graph, tmp_path):
        weights = WeightModel("exponential", scale=20.0).compute(medium_graph)
        pat = build_pat(medium_graph, weights, trunk_size=8)
        store = TrunkStore.persist(pat, tmp_path / "s", cache_bytes=1 << 20).open()
        return pat, OutOfCorePAT(pat, store)

    def test_cache_reduces_io(self, medium_graph, cached_ooc):
        _, ooc = cached_ooc
        v = int(np.argmax(medium_graph.degrees()))
        d = medium_graph.out_degree(v)
        counters = CostCounters()
        rng = make_rng(0)
        for _ in range(50):
            ooc.sample(v, d, rng, counters)
        first_pass = counters.io_bytes
        for _ in range(500):
            ooc.sample(v, d, rng, counters)
        # Hot trunks are cached: 10x more samples ≪ 10x more I/O.
        assert counters.io_bytes < first_pass * 6
        assert ooc.store.cache.stats.hit_rate > 0.3

    def test_cached_draws_identical_to_uncached(self, medium_graph, tmp_path):
        weights = WeightModel("exponential", scale=20.0).compute(medium_graph)
        pat = build_pat(medium_graph, weights, trunk_size=8)
        plain = OutOfCorePAT(pat, TrunkStore.persist(pat, tmp_path / "a").open())
        cached = OutOfCorePAT(
            pat, TrunkStore.persist(pat, tmp_path / "b", cache_bytes=1 << 20).open()
        )
        degrees = medium_graph.degrees()
        for v in np.argsort(degrees)[-4:]:
            d = int(degrees[v])
            for s in {1, d // 2, d}:
                if s < 1:
                    continue
                r1, r2 = make_rng(int(v) * 13 + s), make_rng(int(v) * 13 + s)
                assert plain.sample(int(v), s, r1) == cached.sample(int(v), s, r2)

    def test_engine_cache_stats(self, medium_graph, tmp_path):
        engine = TeaOutOfCoreEngine(
            medium_graph, exponential_walk(scale=20.0), trunk_size=8,
            storage_dir=str(tmp_path), cache_bytes=1 << 20,
        )
        result = engine.run(Workload(max_length=20, max_walks=100), seed=0,
                            record_paths=False)
        stats = engine.cache_stats
        assert stats.hits + stats.misses > 0
        assert "reentry_cache" in engine.memory_report().components
        assert result.counters.io_bytes >= 0
