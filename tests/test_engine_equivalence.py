"""Cross-engine statistical equivalence.

All engines implement the *same* walk semantics with different sampling
machinery, so on a fixed graph and application their first-step
transition distributions must agree with the exact probabilities — and
hence with each other. This is the strongest correctness statement the
paper's comparisons rely on (speed may differ; statistics may not).
"""

import numpy as np
import pytest

from repro.engines import (
    CtdneEngine,
    GraphWalkerEngine,
    KnightKingEngine,
    TeaEngine,
    TeaOutOfCoreEngine,
    Workload,
)
from repro.rng import make_rng
from repro.sampling.counters import CostCounters
from repro.walks.apps import exponential_walk, linear_walk, unbiased_walk
from tests.conftest import chisquare_ok

ENGINE_FACTORIES = [
    lambda g, s: TeaEngine(g, s),
    lambda g, s: TeaEngine(g, s, use_aux_index=False),
    lambda g, s: TeaEngine(g, s, structure="pat"),
    lambda g, s: TeaEngine(g, s, structure="its"),
    lambda g, s: GraphWalkerEngine(g, s),
    lambda g, s: GraphWalkerEngine(g, s, out_of_core=True),
    lambda g, s: KnightKingEngine(g, s),
    lambda g, s: CtdneEngine(g, s),
    lambda g, s: TeaOutOfCoreEngine(g, s, trunk_size=4),
]


def first_step_counts(engine, v, n, seed=0):
    """Empirical first-step choice histogram from vertex v."""
    engine.prepare()
    rng = make_rng(seed)
    d = engine.graph.out_degree(v)
    counts = np.zeros(d)
    counters = CostCounters()
    for _ in range(n):
        counts[engine.sample_edge(v, d, None, rng, counters)] += 1
    return counts


@pytest.mark.parametrize("spec_fn", [linear_walk, lambda: exponential_walk(scale=15.0), unbiased_walk],
                         ids=["linear", "exponential", "unbiased"])
def test_all_engines_match_exact_distribution(small_graph, spec_fn):
    spec = spec_fn()
    v = int(np.argmax(small_graph.degrees()))
    weights = spec.weight_model.compute(small_graph)
    lo = small_graph.indptr[v]
    d = small_graph.out_degree(v)
    probs = weights[lo : lo + d] / weights[lo : lo + d].sum()
    for i, factory in enumerate(ENGINE_FACTORIES):
        engine = factory(small_graph, spec)
        counts = first_step_counts(engine, v, n=15000, seed=i)
        assert chisquare_ok(counts, probs), engine.name


def test_dynamic_vs_static_exponential_same_distribution(small_graph):
    """Equation 3's cancellation: engines evaluating exp(t_i − t) per step
    (CTDNE, GraphWalker) and engines using static exp weights (TEA) draw
    from the same distribution regardless of arrival time t."""
    spec = exponential_walk(scale=15.0)
    v = int(np.argmax(small_graph.degrees()))
    t_arrival = float(np.median(small_graph.neighbors(v)[1]))
    s = small_graph.candidate_count(v, t_arrival)
    if s < 2:
        pytest.skip("need a multi-edge candidate set")
    weights = spec.weight_model.compute(small_graph)
    lo = small_graph.indptr[v]
    probs = weights[lo : lo + s] / weights[lo : lo + s].sum()

    for factory in (lambda g, sp: TeaEngine(g, sp), lambda g, sp: CtdneEngine(g, sp)):
        engine = factory(small_graph, spec)
        engine.prepare()
        rng = make_rng(3)
        counts = np.zeros(s)
        counters = CostCounters()
        for _ in range(15000):
            counts[engine.sample_edge(v, s, t_arrival, rng, counters)] += 1
        assert chisquare_ok(counts, probs), engine.name


def test_node2vec_beta_shifts_distribution():
    """With p ≪ 1 the walk returns to the previous vertex far more often
    than the weight-only distribution would (Equation 4's β at work)."""
    from repro.graph.temporal_graph import TemporalGraph
    from repro.walks.apps import temporal_node2vec

    # 0 → 1 at t=1, then 1 can return to 0 (d=0 → β=1/p) or move on to 2
    # (not adjacent to 0 → β=1/q). Equal temporal weights by construction.
    graph = TemporalGraph.from_edges([(0, 1, 1.0), (1, 0, 2.0), (1, 2, 2.0)])
    return_heavy = temporal_node2vec(p=0.05, q=2.0, scale=1e9)
    neutral = temporal_node2vec(p=1.0, q=1.0, scale=1e9)

    def return_rate(spec, seed):
        engine = TeaEngine(graph, spec)
        wl = Workload(walks_per_vertex=2000, max_length=2, start_vertices=[0])
        result = engine.run(wl, seed=seed)
        two_hop = [p for p in result.paths if p.num_edges == 2]
        returns = sum(p.vertices[2] == 0 for p in two_hop)
        return returns / max(len(two_hop), 1)

    # Neutral β ⇒ ~50/50; p=0.05 ⇒ returning is 1/p / (1/p + 1/q) ≈ 0.976.
    assert abs(return_rate(neutral, 1) - 0.5) < 0.06
    assert return_rate(return_heavy, 1) > 0.9
