"""Published-value registry: internal consistency with the paper's text."""

import pytest

from repro.bench import paper
from repro.graph.datasets import DATASETS


class TestTable3:
    def test_matches_dataset_registry(self):
        """The dataset specs quote exactly the registry's paper metadata."""
        for name, row in paper.TABLE3.items():
            spec = DATASETS[name]
            assert spec.paper_vertices == row["V"]
            assert spec.paper_edges == row["E"]
            assert spec.paper_mean_degree == pytest.approx(row["mean_degree"])
            assert spec.paper_max_degree == row["max_degree"]

    def test_mean_degree_is_not_edge_vertex_ratio(self):
        """Table 3's 'Degree Mean' column is KONECT's statistic, not
        |E|/|V| (e.g. growth: 42.7 vs 21.4) — recorded here so nobody
        "fixes" the registry to the wrong definition. Our analogues match
        the published column via out-degree (directed) means instead."""
        row = paper.TABLE3["growth"]
        assert row["mean_degree"] != pytest.approx(row["E"] / row["V"], rel=0.1)


class TestTable4:
    def test_headline_speedups(self):
        """The abstract's 6,158x / 954x maxima come from twitter/node2vec."""
        gw, kk = paper.table4_speedups("twitter", "node2vec")
        assert gw == pytest.approx(6_158, rel=0.01)
        assert kk == pytest.approx(954, rel=0.01)

    def test_linear_band(self):
        """§5.2: linear-walk speedups are 26.4–39.4x over GraphWalker."""
        ratios = [paper.table4_speedups(d, "linear")[0]
                  for d in ("growth", "edit", "delicious", "twitter")]
        assert min(ratios) == pytest.approx(26.4, rel=0.02)
        assert max(ratios) == pytest.approx(39.4, rel=0.02)

    def test_exponential_max(self):
        """§5.2: up to 3,140x over GraphWalker on exponential."""
        assert paper.table4_speedups("twitter", "exponential")[0] == pytest.approx(
            3_140, rel=0.01
        )

    def test_all_cells_present(self):
        assert len(paper.TABLE4_SECONDS) == 12
        for (_, _), (gw, kk, tea) in paper.TABLE4_SECONDS.items():
            assert gw > kk > tea > 0  # the paper's universal ordering


class TestFigures:
    def test_fig2_ordering(self):
        assert (
            paper.FIG2_EDGES_PER_STEP["tea"]
            < paper.FIG2_EDGES_PER_STEP["knightking"]
            < paper.FIG2_EDGES_PER_STEP["graphwalker"]
        )

    def test_fig9_tea_largest(self):
        assert paper.FIG9_MEMORY_GB[("twitter", "tea")] > paper.FIG9_MEMORY_GB[
            ("twitter", "knightking-1node")
        ] > paper.FIG9_MEMORY_GB[("twitter", "graphwalker")]
        lo, hi = paper.FIG9_INDEX_SHARE
        assert 0 < lo < hi < 1

    def test_fig13d_monotone_in_degree(self):
        assert paper.FIG13D_SPEEDUP[(1_000_000, 100)] > paper.FIG13D_SPEEDUP[
            (1_000_000, 10_000)
        ] > paper.FIG13D_SPEEDUP[("equal", 10_000)]

    def test_describe(self):
        text = paper.describe("twitter", "node2vec")
        assert "6158" in text.replace(",", "") or "6158.0x" in text or "6158.0" in text
