"""Performance-regression baseline harness."""

import json

import pytest

from repro.bench.regression import (
    compare,
    load_baseline,
    save_baseline,
    standard_metrics,
)


class TestRoundtrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, {"steps": 100.0}, {"walk_s": 0.5}, note="test")
        payload = load_baseline(path)
        assert payload["exact"]["steps"] == 100.0
        assert payload["timings"]["walk_s"] == 0.5
        assert payload["note"] == "test"

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


class TestCompare:
    BASE = {"version": 1, "exact": {"steps": 100.0, "eps": 2.5},
            "timings": {"walk_s": 1.0}}

    def test_clean_run(self):
        problems = compare(self.BASE, {"steps": 100.0, "eps": 2.5},
                           {"walk_s": 1.2})
        assert problems == []

    def test_exact_drift_flagged_both_directions(self):
        worse = compare(self.BASE, {"steps": 110.0, "eps": 2.5}, {})
        better = compare(self.BASE, {"steps": 90.0, "eps": 2.5}, {})
        assert len(worse) == 1 and worse[0].kind == "exact"
        assert len(better) == 1  # unexplained improvement is also a change

    def test_timing_slack(self):
        ok = compare(self.BASE, {"steps": 100.0, "eps": 2.5}, {"walk_s": 1.4})
        slow = compare(self.BASE, {"steps": 100.0, "eps": 2.5}, {"walk_s": 2.0})
        assert ok == []
        assert len(slow) == 1 and slow[0].kind == "timing"
        assert "walk_s" in str(slow[0])

    def test_missing_exact_metric_flagged(self):
        problems = compare(self.BASE, {"steps": 100.0}, {})
        assert any(p.kind == "exact-missing" for p in problems)

    def test_zero_baseline(self):
        base = {"version": 1, "exact": {"io": 0.0}, "timings": {}}
        assert compare(base, {"io": 0.0}, {}) == []
        assert len(compare(base, {"io": 5.0}, {})) == 1


class TestStandardMetrics:
    def test_deterministic_and_self_consistent(self, tmp_path):
        exact_a, timings_a = standard_metrics(seed=3)
        exact_b, timings_b = standard_metrics(seed=3)
        assert exact_a == exact_b  # cost model is seed-deterministic
        path = tmp_path / "b.json"
        save_baseline(path, exact_a, timings_a)
        problems = compare(load_baseline(path), exact_b,
                           {k: v for k, v in timings_b.items()})
        assert [p for p in problems if p.kind.startswith("exact")] == []
