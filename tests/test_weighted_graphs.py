"""User edge weights: δ(e) = w_e · f(t_e) across the whole stack."""

import numpy as np
import pytest

from repro.core.weights import WeightModel
from repro.engines import (
    CtdneEngine,
    GraphWalkerEngine,
    KnightKingEngine,
    TeaEngine,
    Workload,
)
from repro.engines.batch import BatchTeaEngine
from repro.exceptions import GraphFormatError, NotSupportedError
from repro.graph import io as graph_io
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import make_rng
from repro.sampling.counters import CostCounters
from repro.walks.apps import exponential_walk, unbiased_walk
from tests.conftest import chisquare_ok


def weighted_star(weights):
    """Vertex 0 → i+1 at time i, with the given user weights."""
    n = len(weights)
    stream = EdgeStream(
        [0] * n, list(range(1, n + 1)), [float(i) for i in range(n)],
        weight=weights,
    )
    return TemporalGraph.from_stream(stream)


class TestEdgeStreamWeights:
    def test_sorted_with_edges(self):
        stream = EdgeStream([0, 0], [1, 2], [5.0, 1.0], weight=[10.0, 20.0])
        assert list(stream.time) == [1.0, 5.0]
        assert list(stream.weight) == [20.0, 10.0]  # permuted with the sort

    def test_validation(self):
        with pytest.raises(GraphFormatError):
            EdgeStream([0], [1], [1.0], weight=[1.0, 2.0])
        with pytest.raises(GraphFormatError):
            EdgeStream([0], [1], [1.0], weight=[0.0])
        with pytest.raises(GraphFormatError):
            EdgeStream([0], [1], [1.0], weight=[float("nan")])

    def test_slice_interval_concat_carry_weights(self):
        stream = EdgeStream.from_edges(
            [(0, 1, float(t), float(t + 1)) for t in range(10)]
        )
        assert stream.weight is not None
        sub = stream.interval(2, 5)
        assert list(sub.weight) == [3.0, 4.0, 5.0, 6.0]
        merged = sub.concat(EdgeStream([0], [1], [99.0]))
        assert merged.weight is not None
        assert merged.weight[-1] == 1.0  # unweighted side defaults to ones

    def test_equality_includes_weights(self):
        a = EdgeStream([0], [1], [1.0], weight=[2.0])
        b = EdgeStream([0], [1], [1.0], weight=[3.0])
        c = EdgeStream([0], [1], [1.0])
        assert a != b
        assert a != c


class TestGraphCarriesWeights:
    def test_csr_alignment(self):
        graph = weighted_star([1.0, 2.0, 3.0, 4.0])
        # Time-descending adjacency: newest edge (t=3, w=4) first.
        assert list(graph.eweight) == [4.0, 3.0, 2.0, 1.0]
        assert graph.to_stream().weight is not None

    def test_weight_model_multiplies(self):
        graph = weighted_star([1.0, 2.0, 3.0, 4.0])
        w = WeightModel("uniform").compute(graph)
        assert list(w) == [4.0, 3.0, 2.0, 1.0]
        w = WeightModel("linear_rank").compute(graph)
        assert list(w) == [4 * 4.0, 3 * 3.0, 2 * 2.0, 1 * 1.0]


class TestEnginesHonorWeights:
    """Every engine's first-step distribution ∝ w_e · f(t_e)."""

    @pytest.mark.parametrize("factory", [
        lambda g, s: TeaEngine(g, s),
        lambda g, s: TeaEngine(g, s, structure="pat"),
        lambda g, s: BatchTeaEngine(g, s),
        lambda g, s: GraphWalkerEngine(g, s),
        lambda g, s: KnightKingEngine(g, s),
        lambda g, s: CtdneEngine(g, s),
    ], ids=["tea", "tea-pat", "tea-batch", "graphwalker", "knightking", "ctdne"])
    @pytest.mark.parametrize("spec_fn", [unbiased_walk,
                                         lambda: exponential_walk(scale=5.0)],
                             ids=["uniform", "exponential"])
    def test_first_step_distribution(self, factory, spec_fn):
        user_w = [1.0, 5.0, 1.0, 10.0, 1.0, 2.0, 4.0, 1.0]
        graph = weighted_star(user_w)
        spec = spec_fn()
        engine = factory(graph, spec)
        engine.prepare()
        expected = spec.weight_model.compute(graph)[:8]
        probs = expected / expected.sum()
        rng = make_rng(0)
        counts = np.zeros(8)
        counters = CostCounters()
        for _ in range(15000):
            counts[engine.sample_edge(0, 8, None, rng, counters)] += 1
        assert chisquare_ok(counts, probs)

    def test_weighted_walks_end_to_end(self):
        user_w = [1.0, 50.0, 1.0]
        graph = weighted_star(user_w)
        engine = TeaEngine(graph, unbiased_walk())
        result = engine.run(
            Workload(walks_per_vertex=3000, max_length=1, start_vertices=[0]),
            seed=0,
        )
        # Newest edge has user weight 1; the w=50 edge (middle time)
        # dominates despite uniform temporal weights.
        first = [p.vertices[1] for p in result.paths if p.num_edges]
        share = sum(1 for v in first if v == 2) / len(first)
        assert share > 0.85  # 50/52 ≈ 0.96 exactly


class TestWeightedIO:
    def test_text_roundtrip(self, tmp_path):
        stream = EdgeStream.from_edges(
            [(0, 1, 1.5, 2.25), (1, 2, 3.0, 0.5)]
        )
        path = tmp_path / "weighted.txt"
        graph_io.save_edge_list(stream, path)
        loaded = graph_io.load_edge_list(path)
        assert loaded == stream

    def test_mixed_weight_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 1.0 2.0\n1 2 2.0\n")
        with pytest.raises(GraphFormatError, match="not all"):
            graph_io.load_edge_list(path)


class TestStreamingGuard:
    def test_incremental_rejects_weighted_batches(self):
        from repro.core.incremental import IncrementalHPAT

        inc = IncrementalHPAT(WeightModel("uniform"))
        batch = EdgeStream([0], [1], [1.0], weight=[2.0])
        with pytest.raises(NotSupportedError, match="edge weights"):
            inc.apply_batch(batch)


class TestPersistFingerprint:
    def test_weights_change_fingerprint(self):
        from repro.core.persist import graph_fingerprint

        a = weighted_star([1.0, 2.0])
        b = weighted_star([1.0, 3.0])
        unweighted = TemporalGraph.from_edges([(0, 1, 0.0), (0, 2, 1.0)])
        assert graph_fingerprint(a) != graph_fingerprint(b)
        assert graph_fingerprint(a) != graph_fingerprint(unweighted)
