"""Index persistence: save/load, fingerprinting, engine warm start."""

import numpy as np
import pytest

from repro.core import persist
from repro.core.builder import build_hpat, build_pat, search_candidate_sets
from repro.core.weights import WeightModel
from repro.engines import TeaEngine, Workload
from repro.exceptions import GraphFormatError
from repro.graph.generators import temporal_powerlaw
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import make_rng
from repro.walks.apps import exponential_walk, linear_walk


@pytest.fixture
def setup(small_graph):
    model = WeightModel("exponential", scale=20.0)
    weights = model.compute(small_graph)
    hpat = build_hpat(small_graph, weights)
    sizes = search_candidate_sets(small_graph)
    return small_graph, model, hpat, sizes


class TestHpatRoundtrip:
    def test_identical_arrays(self, setup, tmp_path):
        graph, model, hpat, sizes = setup
        path = tmp_path / "index.npz"
        persist.save_hpat(path, hpat, graph, sizes, weight_desc=model.describe())
        loaded, loaded_sizes = persist.load_hpat(path, graph,
                                                 weight_desc=model.describe())
        assert np.array_equal(loaded.c, hpat.c)
        assert np.array_equal(loaded.prob, hpat.prob)
        assert np.array_equal(loaded.alias, hpat.alias)
        assert np.array_equal(loaded_sizes, sizes)
        assert loaded.aux.max_size == hpat.aux.max_size

    def test_identical_draws(self, setup, tmp_path):
        graph, model, hpat, sizes = setup
        path = tmp_path / "index.npz"
        persist.save_hpat(path, hpat, graph, sizes, weight_desc=model.describe())
        loaded, _ = persist.load_hpat(path, graph, weight_desc=model.describe())
        v = int(np.argmax(graph.degrees()))
        d = graph.out_degree(v)
        r1, r2 = make_rng(0), make_rng(0)
        for s in (1, d // 2, d):
            assert hpat.sample(v, s, r1) == loaded.sample(v, s, r2)

    def test_wrong_graph_rejected(self, setup, tmp_path):
        graph, model, hpat, sizes = setup
        path = tmp_path / "index.npz"
        persist.save_hpat(path, hpat, graph, sizes, weight_desc=model.describe())
        other = TemporalGraph.from_stream(
            temporal_powerlaw(20, 100, seed=99)
        )
        with pytest.raises(GraphFormatError, match="different graph"):
            persist.load_hpat(path, other, weight_desc=model.describe())

    def test_wrong_weights_rejected(self, setup, tmp_path):
        graph, model, hpat, sizes = setup
        path = tmp_path / "index.npz"
        persist.save_hpat(path, hpat, graph, sizes, weight_desc=model.describe())
        with pytest.raises(GraphFormatError, match="weights"):
            persist.load_hpat(path, graph, weight_desc="linear_rank")

    def test_pat_container_rejected_as_hpat(self, setup, tmp_path):
        graph, model, _, _ = setup
        pat = build_pat(graph, model.compute(graph))
        path = tmp_path / "pat.npz"
        persist.save_pat(path, pat, graph)
        with pytest.raises(GraphFormatError, match="HPAT"):
            persist.load_hpat(path, graph)


class TestPatRoundtrip:
    def test_identical_draws(self, setup, tmp_path):
        graph, model, _, _ = setup
        pat = build_pat(graph, model.compute(graph))
        path = tmp_path / "pat.npz"
        persist.save_pat(path, pat, graph)
        loaded = persist.load_pat(path, graph)
        v = int(np.argmax(graph.degrees()))
        r1, r2 = make_rng(3), make_rng(3)
        assert pat.sample(v, graph.out_degree(v), r1) == loaded.sample(
            v, graph.out_degree(v), r2
        )


class TestEngineWarmStart:
    def test_second_engine_loads_cache(self, small_graph, tmp_path):
        cache = str(tmp_path / "warm.npz")
        spec = exponential_walk(scale=20.0)
        wl = Workload(max_length=5, max_walks=10)

        first = TeaEngine(small_graph, spec, index_cache_path=cache)
        result_a = first.run(wl, seed=7)
        assert first.construction_report is not None  # built fresh

        second = TeaEngine(small_graph, spec, index_cache_path=cache)
        result_b = second.run(wl, seed=7)
        assert second.construction_report is None  # loaded, not built
        assert [p.hops for p in result_a.paths] == [p.hops for p in result_b.paths]

    def test_stale_cache_rebuilt(self, small_graph, tmp_path):
        cache = str(tmp_path / "warm.npz")
        TeaEngine(small_graph, exponential_walk(scale=20.0),
                  index_cache_path=cache).prepare()
        # Different weight model: the cache must be rejected and rebuilt.
        engine = TeaEngine(small_graph, linear_walk(), index_cache_path=cache)
        engine.prepare()
        assert engine.construction_report is not None

    def test_fingerprint_stability(self, small_graph):
        a = persist.graph_fingerprint(small_graph)
        b = persist.graph_fingerprint(small_graph)
        assert a == b
        other = TemporalGraph.from_stream(temporal_powerlaw(20, 100, seed=1))
        assert persist.graph_fingerprint(other) != a


class TestMmapLoading:
    def test_uncompressed_roundtrip_mmaps(self, setup, tmp_path):
        graph, model, hpat, sizes = setup
        path = tmp_path / "raw.npz"
        persist.save_hpat(path, hpat, graph, sizes,
                          weight_desc=model.describe(), compressed=False)
        loaded, loaded_sizes = persist.load_hpat(
            path, graph, weight_desc=model.describe(), mmap_mode="r"
        )
        # The flat arrays really are memory-mapped views of the file.
        assert isinstance(loaded.c, np.memmap)
        assert isinstance(loaded.prob, np.memmap)
        assert isinstance(loaded_sizes, np.memmap)
        assert np.array_equal(loaded.c, hpat.c)
        assert np.array_equal(loaded.alias, hpat.alias)
        assert np.array_equal(loaded_sizes, sizes)

    def test_mmap_draws_identical(self, setup, tmp_path):
        graph, model, hpat, sizes = setup
        path = tmp_path / "raw.npz"
        persist.save_hpat(path, hpat, graph, sizes,
                          weight_desc=model.describe(), compressed=False)
        loaded, _ = persist.load_hpat(path, graph,
                                      weight_desc=model.describe(),
                                      mmap_mode="r")
        v = int(np.argmax(graph.degrees()))
        d = graph.out_degree(v)
        r1, r2 = make_rng(0), make_rng(0)
        for s in (1, d // 2, d):
            assert hpat.sample(v, s, r1) == loaded.sample(v, s, r2)

    def test_compressed_container_falls_back_to_copy(self, setup, tmp_path):
        graph, model, hpat, sizes = setup
        path = tmp_path / "compressed.npz"
        persist.save_hpat(path, hpat, graph, sizes,
                          weight_desc=model.describe(), compressed=True)
        loaded, loaded_sizes = persist.load_hpat(
            path, graph, weight_desc=model.describe(), mmap_mode="r"
        )
        assert not isinstance(loaded.c, np.memmap)
        assert np.array_equal(loaded.c, hpat.c)
        assert np.array_equal(loaded_sizes, sizes)

    def test_mmap_mode_still_rejects_stale(self, setup, tmp_path):
        graph, model, hpat, sizes = setup
        path = tmp_path / "raw.npz"
        persist.save_hpat(path, hpat, graph, sizes,
                          weight_desc=model.describe(), compressed=False)
        other = TemporalGraph.from_stream(temporal_powerlaw(20, 100, seed=1))
        with pytest.raises(GraphFormatError):
            persist.load_hpat(path, other, weight_desc=model.describe(),
                              mmap_mode="r")
        with pytest.raises(GraphFormatError):
            persist.load_hpat(path, graph, weight_desc="something-else",
                              mmap_mode="r")

    def test_mmap_npz_arrays_missing_member(self, setup, tmp_path):
        graph, model, hpat, sizes = setup
        path = tmp_path / "raw.npz"
        persist.save_hpat(path, hpat, graph, sizes,
                          weight_desc=model.describe(), compressed=False)
        assert persist.mmap_npz_arrays(path, ("no_such_member",)) is None
