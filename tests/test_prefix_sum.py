"""Prefix sums and the instrumented ITS binary search."""

import numpy as np
import pytest

from repro.rng import make_rng
from repro.sampling.counters import CostCounters
from repro.sampling.prefix_sum import build_prefix_sums, draw_in_range, its_search


class TestBuildPrefixSums:
    def test_basic(self):
        c = build_prefix_sums([5, 6, 7])
        assert list(c) == [0.0, 5.0, 11.0, 18.0]

    def test_empty(self):
        assert list(build_prefix_sums([])) == [0.0]

    def test_block_weight_identity(self):
        w = np.arange(1, 11, dtype=float)
        c = build_prefix_sums(w)
        for a in range(10):
            for b in range(a, 11):
                assert c[b] - c[a] == pytest.approx(w[a:b].sum())


class TestItsSearch:
    def test_paper_example(self):
        """Section 2.2: C = {0, 5, 11, 18}, r = 12 selects the third edge."""
        c = np.array([0.0, 5.0, 11.0, 18.0])
        assert its_search(c, 12.0) == 2

    def test_boundaries_are_half_open(self):
        c = np.array([0.0, 5.0, 11.0, 18.0])
        # C[k-1] < r <= C[k] convention.
        assert its_search(c, 5.0) == 0
        assert its_search(c, 5.0001) == 1
        assert its_search(c, 18.0) == 2
        assert its_search(c, 0.0001) == 0

    def test_subrange(self):
        c = np.array([0.0, 1.0, 3.0, 6.0, 10.0])
        # Search only items 2..3 (prefix range [2, 4)).
        assert its_search(c, 4.0, lo=2, hi=4) == 2
        assert its_search(c, 9.0, lo=2, hi=4) == 3

    def test_probe_counting(self):
        c = build_prefix_sums(np.ones(128))
        counters = CostCounters()
        its_search(c, 64.5, counters=counters)
        # log2(128) = 7 halvings + 1 confirmation probe.
        assert counters.binary_search_probes == 8

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            its_search(np.array([0.0, 1.0]), 0.5, lo=1, hi=1)

    def test_every_item_reachable(self):
        w = np.array([1.0, 2.0, 3.0, 4.0])
        c = build_prefix_sums(w)
        hits = set()
        for r in np.linspace(0.01, 10.0, 200):
            hits.add(its_search(c, r))
        assert hits == {0, 1, 2, 3}


class TestDrawInRange:
    def test_half_open_interval(self):
        rng = make_rng(0)
        draws = np.array([draw_in_range(rng, 0.0, 1.0) for _ in range(2000)])
        assert np.all(draws > 0.0)
        assert np.all(draws <= 1.0)

    def test_uniformity(self):
        rng = make_rng(1)
        draws = np.array([draw_in_range(rng, 0.0, 10.0) for _ in range(5000)])
        assert abs(draws.mean() - 5.0) < 0.2
