"""Seeded RNG utilities."""

import numpy as np

from repro.rng import make_rng, spawn


class TestMakeRng:
    def test_deterministic_from_int(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(1)
        rng = make_rng(seq)
        assert isinstance(rng, np.random.Generator)

    def test_none_gives_fresh_entropy(self):
        # Can't assert inequality deterministically, but both must work.
        assert 0.0 <= make_rng(None).random() < 1.0


class TestSpawn:
    def test_children_independent_and_deterministic(self):
        a = spawn(make_rng(7), 3)
        b = spawn(make_rng(7), 3)
        assert len(a) == 3
        for ga, gb in zip(a, b):
            assert ga.random() == gb.random()

    def test_children_differ_from_each_other(self):
        children = spawn(make_rng(0), 4)
        draws = {g.random() for g in children}
        assert len(draws) == 4
