"""Chaos serving: faults under a live daemon must be invisible to clients.

Drives declarative fault plans (worker crash + transient IO) through
the ``tea-parallel`` engine kind while requests flow over HTTP, and
asserts the serving contract: the client still receives a bit-identical
result after retry/degradation, and the recovery is *observable* —
``serve.retries`` / ``resilience.degraded`` appear in ``/metrics``.
"""

import pytest

from repro.resilience.faults import FaultInjector
from repro.serve import ServeClient, WalkService

#: One walk request wide enough for 4 chunks at chunk_size=2.
QUERY = dict(starts=[1, 2, 3, 4], walks_per_vertex=2, seed=424, max_length=8)

CRASH_AND_IO_PLAN = {
    "seed": 7,
    "rules": [
        {"site": "chunk", "kind": "worker_crash", "chunks": [0], "attempts": [0]},
        {"site": "chunk", "kind": "io_error", "chunks": [1], "attempts": [0]},
    ],
}

IO_ONLY_PLAN = {
    "seed": 7,
    "rules": [
        {"site": "chunk", "kind": "io_error", "chunks": [0, 1], "attempts": [0]},
    ],
}


def _serve_once(graph, engine_kwargs, n_queries=1):
    """Boot a daemon, run the canonical query n times, return responses
    plus the final metrics text and stats counters."""
    with WalkService(
        graph, engine="tea-parallel", engine_kwargs=engine_kwargs, queue_depth=16
    ) as service:
        client = ServeClient(port=service.port, timeout=120.0)
        responses = [client.walk(**QUERY) for _ in range(n_queries)]
        metrics = client.metrics()
        counters = client.stats()["counters"]
    return responses, metrics, counters


def test_transient_io_recovery_is_bit_identical(small_graph):
    """io_error on two chunks: retried in place, client sees the exact
    no-fault result, serve.retries lands in /metrics."""
    base_kwargs = dict(backend="thread", workers=2, chunk_size=2, retries=3)
    baseline, _, base_counters = _serve_once(small_graph, base_kwargs)
    faulted_kwargs = dict(
        base_kwargs, fault_injector=FaultInjector.from_plan(IO_ONLY_PLAN)
    )
    faulted, metrics, counters = _serve_once(small_graph, faulted_kwargs)
    assert faulted[0]["walks"] == baseline[0]["walks"]
    assert faulted[0]["times"] == baseline[0]["times"]
    assert counters["retries"] >= 2, counters
    assert base_counters["retries"] == 0
    assert "tea_serve_retries" in metrics
    assert "tea_parallel_chunk_retries" in metrics


def test_worker_crash_degrades_and_recovers(small_graph):
    """A real forked-worker crash breaks the process pool; the engine
    degrades process -> thread under the server and the client still
    receives the bit-identical answer. Both the degradation and the
    retries are visible in /metrics."""
    base_kwargs = dict(backend="process", workers=2, chunk_size=2, retries=3)
    baseline, _, _ = _serve_once(small_graph, base_kwargs)
    faulted_kwargs = dict(
        base_kwargs,
        fault_injector=FaultInjector.from_plan(CRASH_AND_IO_PLAN),
    )
    faulted, metrics, counters = _serve_once(small_graph, faulted_kwargs)
    assert faulted[0]["walks"] == baseline[0]["walks"]
    assert faulted[0]["times"] == baseline[0]["times"]
    assert faulted[0]["lengths"] == baseline[0]["lengths"]
    assert counters["retries"] >= 1, counters
    # Degradation surfaced in the Prometheus exposition with a nonzero
    # value (the counter only exists once a parallel run published it).
    degraded_lines = [
        line for line in metrics.splitlines()
        if line.startswith("tea_resilience_degraded ")
    ]
    assert degraded_lines, metrics
    assert float(degraded_lines[0].split()[1]) >= 1.0
    assert "tea_serve_retries" in metrics


def test_faults_do_not_leak_across_requests(small_graph):
    """attempts=[0] rules re-fire per run; every request must still get
    the same bit-identical answer (retry determinism, request after
    request)."""
    faulted_kwargs = dict(
        backend="thread", workers=2, chunk_size=2, retries=3,
        fault_injector=FaultInjector.from_plan(IO_ONLY_PLAN),
    )
    responses, _, counters = _serve_once(small_graph, faulted_kwargs, n_queries=3)
    assert responses[0]["walks"] == responses[1]["walks"] == responses[2]["walks"]
    assert counters["failed"] == 0
    assert counters["served"] == 3


def test_fault_budget_exhaustion_fails_request_not_server(small_graph):
    """A fault plan that out-crashes the retry budget fails that request
    (500) but conservation holds and the daemon keeps serving."""
    hopeless = {
        "seed": 1,
        "rules": [
            {"site": "chunk", "kind": "worker_crash", "chunks": [0],
             "attempts": [0, 1, 2, 3, 4]},
        ],
    }
    kwargs = dict(
        backend="thread", workers=2, chunk_size=2, retries=1,
        fault_injector=FaultInjector.from_plan(hopeless),
    )
    with WalkService(
        small_graph, engine="tea-parallel", engine_kwargs=kwargs, queue_depth=16
    ) as service:
        client = ServeClient(port=service.port, timeout=120.0)
        status, payload = client.post("/walk", QUERY)
        assert status == 500
        assert "retry budget" in payload["error"]
        # The daemon survives: health and conservation intact.
        assert client.healthz()["status"] == "ok"
        counters = client.stats()["counters"]
        assert counters["failed"] == 1
        assert counters["received"] == (
            counters["served"] + counters["rejected"] + counters["failed"]
        )
