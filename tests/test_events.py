"""Structured event log: schema, install/emit plumbing, run correlation."""

import os

import pytest

from repro.engines.base import Workload
from repro.graph.datasets import load_dataset
from repro.telemetry import EventLog, events, new_run_id


@pytest.fixture(autouse=True)
def _isolate_event_log():
    """Each test starts with no installed log and restores the previous."""
    previous = events.install(None)
    yield
    events.install(previous)


class TestEventLog:
    def test_run_id_format(self):
        rid = new_run_id()
        assert len(rid) == 16
        int(rid, 16)  # hex

    def test_emit_stamps_envelope(self):
        log = EventLog()
        ev = log.emit("cache.evicted", key="trunk:3", nbytes=4096)
        assert ev["run_id"] == log.run_id
        assert ev["kind"] == "cache.evicted"
        assert ev["pid"] == os.getpid()
        assert ev["ts"] > 0
        assert ev["key"] == "trunk:3" and ev["nbytes"] == 4096

    def test_module_emit_without_install_is_noop(self):
        assert events.current() is None
        assert events.emit("anything", x=1) is None
        assert events.current_run_id() is None

    def test_install_routes_module_emit(self):
        log = EventLog()
        assert events.install(log) is None
        try:
            events.emit("io.retry", site="trunk_read", attempt=1)
            assert events.current() is log
            assert events.current_run_id() == log.run_id
            assert log.kinds() == ["io.retry"]
        finally:
            events.install(None)

    def test_install_returns_previous(self):
        a, b = EventLog(), EventLog()
        events.install(a)
        assert events.install(b) is a
        assert events.install(None) is b

    def test_write_read_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("chunk.retry", chunk_id=4, attempt=1, reason="crash")
        log.emit("backend.degraded", from_backend="process",
                 to_backend="thread")
        path = tmp_path / "events.jsonl"
        assert log.write(path) == 2
        back = EventLog.read(path)
        assert back == log.events

    def test_read_skips_blank_lines(self, tmp_path):
        log = EventLog()
        log.emit("x")
        path = tmp_path / "e.jsonl"
        path.write_text("\n".join(log.lines()) + "\n\n")
        assert len(EventLog.read(path)) == 1

    def test_extend_preserves_foreign_run_id(self):
        # Worker events ship back already stamped; extend must not
        # restamp them with the destination log's identity fields.
        parent = EventLog()
        child = EventLog(run_id=parent.run_id)
        child.emit("chunk.exec", chunk_id=0)
        parent.extend(child.events)
        assert parent.events[0]["run_id"] == parent.run_id
        assert parent.events[0]["chunk_id"] == 0


class TestRunCorrelation:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("tiny", seed=5)

    @pytest.fixture(scope="class")
    def spec(self):
        from repro.walks.apps import APPLICATIONS

        return APPLICATIONS["exponential"]

    def _run_parallel(self, graph, spec, backend, workers=2):
        from repro.parallel.engine import ParallelBatchTeaEngine

        engine = ParallelBatchTeaEngine(
            graph, spec, workers=workers, chunk_size=8, backend=backend,
        )
        log = EventLog()
        events.install(log)
        result = engine.run(
            Workload(walks_per_vertex=2, max_length=10), seed=0
        )
        return engine, log, result

    def test_thread_backend_single_run_id(self, graph, spec):
        engine, log, result = self._run_parallel(graph, spec, "thread")
        assert log.events
        assert {e["run_id"] for e in log.events} == {log.run_id}
        assert "chunk.exec" in log.kinds()
        assert result.run_id == log.run_id

    def test_process_backend_ships_worker_events(self, graph, spec):
        engine, log, result = self._run_parallel(
            graph, spec, "process", workers=4
        )
        if engine.last_backend != "process":
            pytest.skip("process backend unavailable on this host")
        assert {e["run_id"] for e in log.events} == {log.run_id}
        worker_pids = {e["pid"] for e in log.events} - {os.getpid()}
        assert worker_pids, "no events shipped back from worker processes"

    def test_engine_result_run_id_lands_in_report(self, graph, spec):
        from repro.engines.batch import BatchTeaEngine

        log = EventLog()
        events.install(log)
        engine = BatchTeaEngine(graph, spec)
        result = engine.run(Workload(walks_per_vertex=1, max_length=5),
                            seed=0)
        assert result.run_id == log.run_id
        assert result.run_report()["meta"]["run_id"] == log.run_id

    def test_fault_injection_is_logged(self, graph, spec):
        from repro.parallel.engine import ParallelBatchTeaEngine
        from repro.resilience.faults import FaultInjector, FaultRule

        injector = FaultInjector([
            FaultRule(site="chunk", kind="worker_crash",
                      chunks=frozenset({0}), max_triggers=1),
        ])
        engine = ParallelBatchTeaEngine(
            graph, spec, workers=2, chunk_size=8, backend="thread",
            fault_injector=injector,
        )
        log = EventLog()
        events.install(log)
        engine.run(Workload(walks_per_vertex=2, max_length=10), seed=0)
        kinds = set(log.kinds())
        assert "fault.injected" in kinds
        assert "chunk.retry" in kinds
        retry = next(e for e in log.events if e["kind"] == "chunk.retry")
        assert retry["chunk_id"] == 0 and retry["run_id"] == log.run_id
