"""ParallelBatchTeaEngine: chunk-parallel ≡ serial, deterministic, folded.

The contract under test (ISSUE acceptance criteria):

* next-hop distribution equivalence with the serial batch engine (same
  chi-squared harness the batch-vs-scalar tests use);
* bit-determinism — fixed ``(seed, chunk_size)`` gives identical paths
  and identical merged counters across worker counts, backends, and
  repeated runs;
* telemetry conservation — per-worker counters/registries fold to
  exactly the serial totals, and the ``parallel.*`` metrics appear;
* the shared-memory image round-trips arrays by name.
"""

import multiprocessing

import numpy as np
import pytest

from repro.engines import BatchTeaEngine, ParallelBatchTeaEngine, Workload
from repro.graph.validate import is_temporal_path
from repro.parallel.chunks import (
    ChunkPlan,
    adaptive_chunk_size,
    default_chunk_size,
    plan_chunks,
    rechunk,
)
from repro.parallel.sharing import SharedIndexImage, export_or_none
from repro.rng import make_rng
from repro.walks.apps import exponential_walk, linear_walk, temporal_node2vec
from tests.conftest import chisquare_ok

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")


def _paths_equal(a, b):
    return len(a) == len(b) and all(x.hops == y.hops for x, y in zip(a, b))


# -- chunk planning ----------------------------------------------------------


class TestChunkPlanning:
    def test_bounds_cover_starts(self):
        starts = np.arange(103, dtype=np.int64)
        plan = plan_chunks(starts, 10, make_rng(0))
        assert plan.bounds[0] == 0 and plan.bounds[-1] == 103
        assert plan.num_chunks == 11
        widths = np.diff(plan.bounds)
        assert widths.max() == 10 and widths.min() >= 1
        assert plan.seeds.size == plan.num_walks

    def test_plan_is_deterministic(self):
        starts = np.arange(50, dtype=np.int64)
        p1 = plan_chunks(starts, 7, make_rng(3))
        p2 = plan_chunks(starts, 7, make_rng(3))
        assert np.array_equal(p1.bounds, p2.bounds)
        assert np.array_equal(p1.seeds, p2.seeds)

    def test_empty_workload(self):
        plan = plan_chunks(np.zeros(0, dtype=np.int64), 8, make_rng(0))
        assert plan.num_chunks == 1 and plan.chunk(0) == (0, 0)

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            plan_chunks(np.arange(4), 0, make_rng(0))

    def test_default_chunk_size(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(1600, 4) == 100
        # Always at least one chunk per walk bundle, even tiny loads.
        assert default_chunk_size(3, 8) == 1


# -- shared-memory image -----------------------------------------------------


class TestSharedIndexImage:
    def test_export_attach_roundtrip(self):
        arrays = {
            "a": np.arange(100, dtype=np.int64),
            "b": np.linspace(0, 1, 37),
            "empty": np.zeros(0, dtype=np.float64),
        }
        image = export_or_none(arrays)
        if image is None:
            pytest.skip("shared memory unavailable on this host")
        try:
            for name, arr in arrays.items():
                assert np.array_equal(image.arrays()[name], arr)
            attached = SharedIndexImage.attach(image.specs())
            try:
                for name, arr in arrays.items():
                    got = attached.arrays()[name]
                    assert np.array_equal(got, arr)
                    assert got.dtype == arr.dtype and got.shape == arr.shape
                    assert not got.flags.writeable
            finally:
                attached.dispose()
        finally:
            image.dispose()

    def test_dispose_unlinks(self):
        image = export_or_none({"x": np.arange(8)})
        if image is None:
            pytest.skip("shared memory unavailable on this host")
        specs = image.specs()
        image.dispose()
        with pytest.raises(FileNotFoundError):
            SharedIndexImage.attach(specs)


# -- distribution equivalence ------------------------------------------------


class TestDistributionEquivalence:
    def test_first_hop_matches_exact(self, small_graph):
        """Chunk-parallel next-hop counts fit the exact weight
        distribution (same harness as batch-vs-scalar)."""
        spec = exponential_walk(scale=15.0)
        v = int(np.argmax(small_graph.degrees()))
        d = small_graph.out_degree(v)
        weights = spec.weight_model.compute(small_graph)
        lo = small_graph.indptr[v]
        # Multi-edges: fold edge weights per destination vertex, since
        # paths record vertices, not edge positions.
        nbrs = small_graph.nbr[lo : lo + d]
        dests = np.unique(nbrs)
        w_by_dest = np.array(
            [weights[lo : lo + d][nbrs == u].sum() for u in dests]
        )
        probs = w_by_dest / w_by_dest.sum()

        engine = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, chunk_size=2500, backend="thread"
        )
        wl = Workload(walks_per_vertex=20000, max_length=1, start_vertices=[v])
        result = engine.run(wl, seed=5)
        first = [p.hops[1][0] for p in result.paths if p.num_edges >= 1]
        index_of = {int(u): j for j, u in enumerate(dests)}
        counts = np.zeros(dests.size)
        for u in first:
            counts[index_of[int(u)]] += 1
        assert counts.sum() == 20000
        assert chisquare_ok(counts, probs)

    def test_mean_length_matches_serial(self, small_graph):
        spec = exponential_walk(scale=20.0)
        # Enough walks that the mean is a statistic, not a coin flip:
        # serial and parallel draw from *different* streams by design
        # (lane streams vs one generator), so only distributions match.
        wl = Workload(walks_per_vertex=40, max_length=10)
        serial = BatchTeaEngine(small_graph, spec).run(wl, seed=9)
        par = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, backend="thread"
        ).run(wl, seed=9)
        m1 = np.mean([p.num_edges for p in serial.paths])
        m2 = np.mean([p.num_edges for p in par.paths])
        assert m2 == pytest.approx(m1, rel=0.1)


# -- determinism -------------------------------------------------------------


class TestDeterminism:
    def test_repeat_runs_identical(self, small_graph):
        spec = linear_walk()
        wl = Workload(walks_per_vertex=2, max_length=8)
        make = lambda: ParallelBatchTeaEngine(
            small_graph, spec, workers=2, chunk_size=16, backend="thread"
        )
        r1 = make().run(wl, seed=4)
        r2 = make().run(wl, seed=4)
        assert _paths_equal(r1.paths, r2.paths)
        assert r1.counters.snapshot() == r2.counters.snapshot()

    def test_worker_count_invariant(self, small_graph):
        """workers=1 and workers=4 are bit-identical for one chunk plan."""
        spec = exponential_walk(scale=20.0)
        wl = Workload(walks_per_vertex=2, max_length=8)
        runs = [
            ParallelBatchTeaEngine(
                small_graph, spec, workers=w, chunk_size=20, backend="thread"
            ).run(wl, seed=11)
            for w in (1, 2, 4)
        ]
        for other in runs[1:]:
            assert _paths_equal(runs[0].paths, other.paths)
            assert runs[0].counters.snapshot() == other.counters.snapshot()

    @needs_fork
    def test_backend_invariant(self, small_graph):
        """serial, thread, and forked process backends agree exactly."""
        spec = exponential_walk(scale=20.0)
        wl = Workload(walks_per_vertex=2, max_length=8)
        results = {}
        for backend in ("serial", "thread", "process"):
            results[backend] = ParallelBatchTeaEngine(
                small_graph, spec, workers=2, chunk_size=25, backend=backend
            ).run(wl, seed=2)
        assert _paths_equal(results["serial"].paths, results["thread"].paths)
        assert _paths_equal(results["serial"].paths, results["process"].paths)
        snaps = {b: r.counters.snapshot() for b, r in results.items()}
        assert snaps["serial"] == snaps["thread"] == snaps["process"]

    @needs_fork
    def test_share_mode_invariant(self, small_graph):
        spec = linear_walk()
        wl = Workload(walks_per_vertex=1, max_length=6)
        shm = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, chunk_size=16,
            backend="process", share_mode="shm",
        )
        cow = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, chunk_size=16,
            backend="process", share_mode="inherit",
        )
        r_shm = shm.run(wl, seed=6)
        r_cow = cow.run(wl, seed=6)
        assert cow.last_share_mode == "cow"
        assert shm.last_share_mode in ("shm", "cow")  # shm may be unavailable
        assert _paths_equal(r_shm.paths, r_cow.paths)
        assert r_shm.counters.snapshot() == r_cow.counters.snapshot()


# -- telemetry fold ----------------------------------------------------------


class TestTelemetryFold:
    def test_conservation_and_parallel_metrics(self, small_graph):
        from repro.telemetry import MetricsRegistry

        spec = exponential_walk(scale=20.0)
        wl = Workload(walks_per_vertex=2, max_length=8)
        serial = ParallelBatchTeaEngine(
            small_graph, spec, workers=1, chunk_size=16, backend="serial"
        ).run(wl, seed=7)

        registry = MetricsRegistry()
        engine = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, chunk_size=16, backend="thread"
        )
        result = engine.run(wl, seed=7, registry=registry)

        assert result.counters.steps == serial.counters.steps
        assert registry.counter_value("sampling.steps") == serial.counters.steps
        worker_fold = registry.histogram("parallel.worker_steps").total
        assert int(worker_fold) == serial.counters.steps

        assert registry.gauge_value("parallel.workers") == 2
        num_chunks = registry.counter_value("parallel.chunks")
        assert num_chunks == -(-wl.resolve_starts(
            small_graph.num_vertices, make_rng(7)
        ).size // 16)
        wait_hist = registry.histogram("parallel.queue_wait_seconds")
        assert wait_hist.count == num_chunks
        # The per-chunk frontier histograms merged in too.
        assert registry.histogram("batch.frontier_size").count > 0
        assert registry.counter_value("walk.walks") == len(result.paths)

    def test_chunk_spans_under_walk_span(self, small_graph):
        spec = linear_walk()
        engine = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, chunk_size=16, backend="thread"
        )
        result = engine.run(Workload(walks_per_vertex=1, max_length=6), seed=1)
        walk_roots = [s for s in result.trace.roots if s.name == "walk"]
        assert len(walk_roots) == 1
        chunk_spans = [c for c in walk_roots[0].children if c.name == "walk.chunk"]
        assert len(chunk_spans) == result.registry.counter_value("parallel.chunks")
        assert sum(s.attributes["steps"] for s in chunk_spans) == result.counters.steps
        assert walk_roots[0].attributes["backend"] == "thread"


# -- end-to-end --------------------------------------------------------------


class TestEndToEnd:
    def test_paths_are_temporal(self, small_graph):
        spec = exponential_walk(scale=20.0)
        engine = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, chunk_size=16, backend="thread"
        )
        result = engine.run(Workload(max_length=12, max_walks=40), seed=3)
        assert result.num_walks == 40
        for path in result.paths:
            assert is_temporal_path(engine.graph, path.hops)

    @needs_fork
    def test_node2vec_through_process_backend(self, small_graph):
        spec = temporal_node2vec(p=2.0, q=0.5, scale=20.0)
        engine = ParallelBatchTeaEngine(
            small_graph, spec, workers=1, chunk_size=16, backend="serial"
        )
        serial = engine.run(Workload(max_length=8), seed=5)
        par = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, chunk_size=16, backend="process"
        ).run(Workload(max_length=8), seed=5)
        assert _paths_equal(serial.paths, par.paths)
        for path in par.paths[:20]:
            assert is_temporal_path(engine.graph, path.hops)

    def test_sink_receives_chunk_order(self, small_graph, tmp_path):
        from repro.walks.sink import WalkSink

        spec = linear_walk()
        wl = Workload(walks_per_vertex=1, max_length=6)
        out = tmp_path / "corpus.txt"
        engine = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, chunk_size=16, backend="thread"
        )
        with WalkSink(str(out)) as sink:
            result = engine.run(wl, seed=0, record_paths=True, sink=sink)
        lines = out.read_text().strip().splitlines()
        assert len(lines) == len(result.paths)
        first_vertices = [int(line.split()[0]) for line in lines]
        assert first_vertices == [p.hops[0][0] for p in result.paths]

    def test_stop_probability(self, small_graph):
        spec = linear_walk()
        wl = Workload(walks_per_vertex=2, max_length=30, stop_probability=0.4)
        result = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, chunk_size=16, backend="thread"
        ).run(wl, seed=8)
        lengths = [p.num_edges for p in result.paths]
        assert np.mean(lengths) < 10  # geometric stop truncates hard

    def test_validation(self, small_graph):
        with pytest.raises(ValueError):
            ParallelBatchTeaEngine(small_graph, linear_walk(), backend="mpi")
        with pytest.raises(ValueError):
            ParallelBatchTeaEngine(small_graph, linear_walk(), share_mode="magic")
        with pytest.raises(ValueError):
            ParallelBatchTeaEngine(small_graph, linear_walk(), workers=-1)

    def test_cli_walk_workers_flag(self, capsys):
        from repro.cli import main

        rc = main([
            "walk", "--dataset", "tiny", "--app", "exponential",
            "--length", "6", "--workers", "2", "--chunk-size", "16",
            "--parallel-backend", "thread",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "engine: tea-parallel" in out

    def test_cli_new_parallel_flags(self, capsys):
        from repro.cli import main

        rc = main([
            "walk", "--dataset", "tiny", "--app", "exponential",
            "--length", "6", "--workers", "2",
            "--parallel-backend", "thread",
            "--chunk-target-ms", "20", "--interleave", "3",
            "--no-warm-pool",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "engine: tea-parallel" in out


# -- adaptive chunk planning -------------------------------------------------


class TestAdaptivePlanning:
    def test_size_monotone_in_target(self):
        """More target milliseconds never means smaller chunks."""
        sizes = [
            adaptive_chunk_size(100_000, 4, 0.001, target_ms=t)
            for t in (5, 10, 25, 75, 150, 300, 1000)
        ]
        assert sizes == sorted(sizes)
        # And exactly target/per_walk when nothing clamps.
        assert adaptive_chunk_size(100_000, 4, 0.001, target_ms=75) == 75

    def test_size_monotone_in_cost(self):
        """Slower walks mean smaller chunks, never larger."""
        sizes = [
            adaptive_chunk_size(100_000, 4, per_walk, target_ms=75)
            for per_walk in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_size_caps_at_one_chunk_per_worker(self):
        # A huge target must not serialise the run: every worker can
        # still get a chunk.
        assert adaptive_chunk_size(100, 4, 10.0, target_ms=10**7) == 25
        assert adaptive_chunk_size(100, 3, 10.0, target_ms=10**7) == 34

    def test_fallback_without_calibration(self):
        assert adaptive_chunk_size(1000, 4, None) == default_chunk_size(1000, 4)
        assert adaptive_chunk_size(1000, 4, 0.0) == default_chunk_size(1000, 4)
        assert adaptive_chunk_size(1000, 4, -1.0) == default_chunk_size(1000, 4)
        assert adaptive_chunk_size(0, 4, 0.001) == 1

    def test_rechunk_keeps_walks_and_seeds(self):
        plan = plan_chunks(np.arange(103, dtype=np.int64), 10, make_rng(0))
        replanned = rechunk(plan, 7)
        assert np.array_equal(replanned.starts, plan.starts)
        assert np.array_equal(replanned.seeds, plan.seeds)
        assert replanned.bounds[-1] == 103
        assert np.diff(replanned.bounds).max() == 7

    def test_probe_calibration_monotone_chunk_counts(self, small_graph):
        """Engine level: a larger --chunk-target-ms never yields more
        chunks for the same workload (the probe feeds a monotone
        planner)."""
        from repro.telemetry import MetricsRegistry

        spec = linear_walk()
        wl = Workload(walks_per_vertex=4, max_length=8)
        counts = []
        for target in (0.05, 50.0, 5000.0):
            registry = MetricsRegistry()
            engine = ParallelBatchTeaEngine(
                small_graph, spec, workers=2, backend="thread",
                chunk_target_ms=target,
            )
            engine.run(wl, seed=3, registry=registry, record_paths=False)
            engine.close()
            counts.append(int(registry.counter_value("parallel.chunks")))
        assert counts == sorted(counts, reverse=True)


# -- determinism matrix (warm pools / adaptive chunks / interleave) ----------


class TestDeterminismMatrix:
    def test_chunking_warm_interleave_invariant(self, small_graph):
        """One seed, one answer: fixed vs adaptive chunking, warm vs
        cold pools, and interleave on/off are all bit-identical."""
        spec = exponential_walk(scale=20.0)
        wl = Workload(walks_per_vertex=2, max_length=8)
        reference = ParallelBatchTeaEngine(
            small_graph, spec, workers=1, backend="serial", chunk_size=16
        )
        ref = reference.run(wl, seed=11)
        reference.close()
        variants = [
            dict(chunk_size=5),
            dict(chunk_size=64),
            dict(chunk_target_ms=0.5),
            dict(chunk_target_ms=500.0),
            dict(chunk_size=16, warm_pool=False),
            dict(chunk_size=16, interleave=4),
            dict(chunk_target_ms=50.0, interleave=3, warm_pool=False),
        ]
        for kw in variants:
            engine = ParallelBatchTeaEngine(
                small_graph, spec, workers=3, backend="thread", **kw
            )
            res = engine.run(wl, seed=11)
            engine.close()
            assert _paths_equal(ref.paths, res.paths), kw
            assert ref.counters.snapshot() == res.counters.snapshot(), kw

    def test_warm_second_run_identical_and_reused(self, small_graph):
        spec = linear_walk()
        wl = Workload(walks_per_vertex=2, max_length=8)
        engine = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, backend="thread", chunk_size=16
        )
        r1 = engine.run(wl, seed=4)
        assert engine.last_pool["builds"] >= 1
        r2 = engine.run(wl, seed=4)
        assert engine.last_pool["builds"] == 0
        assert engine.last_pool["reuses"] >= 1
        assert engine.last_pool["startup_seconds"] == 0.0
        engine.close()
        assert _paths_equal(r1.paths, r2.paths)
        assert r1.counters.snapshot() == r2.counters.snapshot()

    @needs_fork
    def test_process_warm_reuse_metrics(self, small_graph):
        """Second run over a warm process pool: zero startup/attach in
        the registry, pool_reuse counted, results bit-identical."""
        from repro.telemetry import MetricsRegistry

        spec = linear_walk()
        wl = Workload(walks_per_vertex=1, max_length=6)
        engine = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, backend="process", chunk_size=16
        )
        reg1 = MetricsRegistry()
        r1 = engine.run(wl, seed=6, registry=reg1)
        assert reg1.gauge_value("parallel.pool_startup_seconds") > 0.0
        reg2 = MetricsRegistry()
        r2 = engine.run(wl, seed=6, registry=reg2)
        engine.close()
        assert reg2.gauge_value("parallel.pool_startup_seconds") == 0.0
        assert reg2.gauge_value("parallel.attach_seconds") == 0.0
        assert reg2.counter_value("parallel.pool_reuse") >= 1
        assert _paths_equal(r1.paths, r2.paths)

    @needs_fork
    def test_cold_pool_matches_warm_pool_process(self, small_graph):
        spec = exponential_walk(scale=20.0)
        wl = Workload(walks_per_vertex=1, max_length=6)
        warm = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, backend="process", chunk_size=16
        )
        r_warm_1 = warm.run(wl, seed=9)
        r_warm_2 = warm.run(wl, seed=9)  # actually-warm pool
        warm.close()
        cold = ParallelBatchTeaEngine(
            small_graph, spec, workers=2, backend="process", chunk_size=16,
            warm_pool=False,
        )
        r_cold = cold.run(wl, seed=9)
        assert cold.last_pool["builds"] >= 1  # pool was rebuilt, not reused
        r_cold_2 = cold.run(wl, seed=9)
        assert cold.last_pool["builds"] >= 1  # torn down after each run
        cold.close()
        for other in (r_warm_2, r_cold, r_cold_2):
            assert _paths_equal(r_warm_1.paths, other.paths)
            assert r_warm_1.counters.snapshot() == other.counters.snapshot()
