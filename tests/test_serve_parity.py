"""Batching parity: coalescing must be invisible to every request.

The serving batcher concatenates concurrent requests into one frontier
run. The contract: for ANY partition of N requests into batches, each
request's walks are bit-identical to running it alone — across engine
kinds (scalar ``tea``, vectorised ``tea-batch``, chunk-parallel
``tea-parallel``) and both chunking modes (fixed and adaptive).

These tests drive the real execution path (``BatchExecutor.execute``
over ``PendingRequest`` groups — exactly what the batcher thread calls)
plus one HTTP-level staging test through a live daemon.
"""

import itertools
import threading
import time

import pytest

from repro.engines.session import TeaSession
from repro.serve import BatchExecutor, PendingRequest, ServeClient, WalkRequest, WalkService
from repro.serve.protocol import build_spec


def _make_requests(n, kind="walk", app="exponential"):
    """n compatible requests with distinct seeds/starts/widths."""
    return [
        WalkRequest(
            kind=kind,
            starts=tuple(range(1 + i, 4 + i)),
            app=app,
            walks_per_vertex=1 + (i % 3),
            max_length=8,
            seed=900 + 7 * i,
        )
        for i in range(n)
    ]


def _pending(request):
    return PendingRequest(
        request=request, request_id=f"{id(request):016x}", spec=request.spec()
    )


def _run_partition(executor, requests, partition):
    """Execute ``requests`` grouped per ``partition``; responses in
    request order."""
    assert sum(partition) == len(requests)
    responses = []
    it = iter(requests)
    for size in partition:
        group = [_pending(next(it)) for _ in range(size)]
        executor.execute(group)
        responses.extend(p.response for p in group)
    return responses


def _walk_payload(response):
    return (response["lengths"], response.get("walks"), response.get("times"))


ENGINE_CONFIGS = [
    pytest.param("tea", {}, id="tea-scalar"),
    pytest.param("tea-batch", {}, id="tea-batch"),
    pytest.param(
        "tea-parallel",
        {"backend": "thread", "workers": 2, "chunk_size": 3},
        id="parallel-fixed-chunks",
    ),
    pytest.param(
        "tea-parallel",
        {"backend": "thread", "workers": 2, "chunk_target_ms": 10.0},
        id="parallel-adaptive-chunks",
    ),
    pytest.param(
        "tea-parallel",
        {"backend": "serial", "chunk_size": 2},
        id="parallel-serial",
    ),
]

PARTITIONS = [(6,), (3, 3), (1, 5), (2, 2, 2), (1, 1, 1, 1, 1, 1)]


@pytest.fixture(scope="module")
def parity_graph(small_graph):
    return small_graph


@pytest.mark.parametrize("engine_kind,engine_kwargs", ENGINE_CONFIGS)
def test_any_partition_matches_solo(parity_graph, engine_kind, engine_kwargs):
    session = TeaSession(parity_graph, engine=engine_kind, engine_kwargs=engine_kwargs)
    executor = BatchExecutor(session)
    try:
        requests = _make_requests(6)
        solo = _run_partition(executor, requests, (1, 1, 1, 1, 1, 1))
        for partition in PARTITIONS:
            batched = _run_partition(executor, requests, partition)
            for a, b in zip(solo, batched):
                assert _walk_payload(a) == _walk_payload(b), (
                    engine_kind, engine_kwargs, partition
                )
    finally:
        session.close()


@pytest.mark.parametrize("engine_kind,engine_kwargs", ENGINE_CONFIGS)
def test_batch_order_is_invisible(parity_graph, engine_kind, engine_kwargs):
    """Within one coalesced batch, request order must not matter."""
    session = TeaSession(parity_graph, engine=engine_kind, engine_kwargs=engine_kwargs)
    executor = BatchExecutor(session)
    try:
        requests = _make_requests(4)
        baseline = {}
        group = [_pending(r) for r in requests]
        executor.execute(group)
        for pending in group:
            baseline[pending.request.seed] = _walk_payload(pending.response)
        for perm in itertools.islice(itertools.permutations(requests), 1, 6):
            group = [_pending(r) for r in perm]
            executor.execute(group)
            for pending in group:
                assert _walk_payload(pending.response) == baseline[
                    pending.request.seed
                ]
    finally:
        session.close()


def test_vectorised_and_parallel_agree(parity_graph):
    """tea-batch and every tea-parallel configuration share the kernel,
    so batched serving results are bit-identical across them."""
    requests = _make_requests(5, app="node2vec")
    reference = None
    for kind, kwargs in [
        ("tea-batch", {}),
        ("tea-parallel", {"backend": "serial", "chunk_size": 2}),
        ("tea-parallel", {"backend": "thread", "workers": 2, "chunk_target_ms": 5.0}),
    ]:
        session = TeaSession(parity_graph, engine=kind, engine_kwargs=kwargs)
        executor = BatchExecutor(session)
        try:
            group = [_pending(r) for r in requests]
            executor.execute(group)
            payload = [_walk_payload(p.response) for p in group]
        finally:
            session.close()
        if reference is None:
            reference = payload
        else:
            assert payload == reference, (kind, kwargs)


def test_recommendations_batch_parity(parity_graph):
    """The recommend endpoint is walk batching + deterministic
    aggregation, so top-k lists survive coalescing bit-for-bit."""
    session = TeaSession(parity_graph, engine="tea-batch")
    executor = BatchExecutor(session)
    try:
        requests = _make_requests(4, kind="recommend")
        solo = _run_partition(executor, requests, (1, 1, 1, 1))
        batched = _run_partition(executor, requests, (4,))
        for a, b in zip(solo, batched):
            assert a["recommendations"] == b["recommendations"]
            assert a["recommendations"] or a["lengths"]
    finally:
        session.close()


def test_mixed_specs_do_not_bleed(parity_graph):
    """Requests with different batch keys form separate groups; runs of
    one group must not perturb another (no cross-request RNG bleed)."""
    session = TeaSession(parity_graph, engine="tea-batch")
    executor = BatchExecutor(session)
    try:
        exp = _make_requests(3, app="exponential")
        n2v = _make_requests(3, app="node2vec")
        solo = _run_partition(executor, exp + n2v, (1,) * 6)
        # Interleave execution: exp batch, n2v batch, exp batch ...
        mixed = []
        mixed.extend(_run_partition(executor, exp[:2], (2,)))
        mixed.extend(_run_partition(executor, n2v, (3,)))
        mixed.extend(_run_partition(executor, exp[2:], (1,)))
        ordered = mixed[:2] + mixed[5:] + mixed[2:5]
        for a, b in zip(solo, ordered):
            assert _walk_payload(a) == _walk_payload(b)
        assert exp[0].batch_key() != n2v[0].batch_key()
        assert exp[0].batch_key() == exp[1].batch_key()
    finally:
        session.close()


def test_http_staged_batch_matches_solo(parity_graph):
    """End-to-end: a staged 4-request HTTP batch returns exactly what
    the same queries return when served alone."""
    queries = [
        dict(starts=[2 + i], walks_per_vertex=2, seed=50 + i, max_length=8)
        for i in range(4)
    ]
    with WalkService(parity_graph, engine="tea-batch", queue_depth=16) as service:
        client = ServeClient(port=service.port)
        service.batcher.pause()
        results = {}

        def _go(idx):
            results[idx] = client.walk(**queries[idx])

        threads = [threading.Thread(target=_go, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10.0
        while service.queue.depth() < 4:
            assert time.monotonic() < deadline, "requests never parked"
            time.sleep(0.005)
        service.batcher.resume()
        for t in threads:
            t.join(timeout=30.0)
        assert len(results) == 4
        assert all(r["batched_with"] == 4 for r in results.values())
        for idx, query in enumerate(queries):
            solo = client.walk(**query)
            assert solo["batched_with"] == 1
            assert solo["walks"] == results[idx]["walks"]
            assert solo["times"] == results[idx]["times"]


def test_batch_key_ignores_postprocessing_knobs(parity_graph):
    """record_paths / top_k / kind must not fragment batches."""
    spec = build_spec("exponential")
    a = WalkRequest(kind="walk", starts=(1,), seed=1, record_paths=False)
    b = WalkRequest(kind="recommend", starts=(2,), seed=2, top_k=9)
    assert a.batch_key(spec) == b.batch_key(spec)
    c = WalkRequest(kind="walk", starts=(1,), seed=1, max_length=33)
    assert a.batch_key() != c.batch_key()
