"""WeightModel: the static-weight rewrite of Equation 3."""

import numpy as np
import pytest

from repro.core.weights import WeightModel
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            WeightModel(kind="banana")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            WeightModel(kind="exponential", scale=0.0)

    def test_describe(self):
        assert "exponential" in WeightModel("exponential", 2.0).describe()
        assert WeightModel("uniform").describe() == "uniform"


class TestCompute:
    def test_uniform(self, toy_graph):
        w = WeightModel("uniform").compute(toy_graph)
        assert np.all(w == 1.0)

    def test_linear_rank_vertex7(self, toy_graph):
        """Figure 5: vertex 7's temporal weights are 7..1, newest first."""
        w = WeightModel("linear_rank").compute(toy_graph)
        lo, hi = toy_graph.indptr[7], toy_graph.indptr[8]
        assert list(w[lo:hi]) == [7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0]

    def test_linear_time_positive(self, small_graph):
        w = WeightModel("linear_time").compute(small_graph)
        assert np.all(w >= 1.0)

    def test_exponential_shift_invariance(self, toy_graph):
        """Per-vertex max shift: probabilities equal the raw exp form."""
        w = WeightModel("exponential", scale=1.0).compute(toy_graph)
        lo, hi = toy_graph.indptr[7], toy_graph.indptr[8]
        times = toy_graph.etime[lo:hi]
        raw = np.exp(times)
        assert np.allclose(w[lo:hi] / w[lo:hi].sum(), raw / raw.sum())

    def test_exponential_newest_weight_is_one(self, small_graph):
        w = WeightModel("exponential", scale=5.0).compute(small_graph)
        for v in range(small_graph.num_vertices):
            lo, hi = small_graph.indptr[v], small_graph.indptr[v + 1]
            if hi > lo:
                assert w[lo] == pytest.approx(1.0)
                assert np.all(w[lo:hi] <= 1.0 + 1e-12)

    def test_exponential_no_overflow_large_times(self):
        stream = EdgeStream([0, 0], [1, 2], [1e6, 1e6 + 10])
        graph = TemporalGraph.from_stream(stream)
        w = WeightModel("exponential", scale=1.0).compute(graph)
        assert np.all(np.isfinite(w))
        assert w.max() == pytest.approx(1.0)

    def test_monotone_nonincreasing_per_segment(self, small_graph):
        """Time-desc order ⇒ non-increasing weights for monotone kinds —
        the property the rejection envelope's prefix-max relies on."""
        for kind, scale in [("linear_rank", 1.0), ("linear_time", 1.0),
                            ("exponential", 10.0)]:
            w = WeightModel(kind, scale).compute(small_graph)
            for v in range(small_graph.num_vertices):
                lo, hi = small_graph.indptr[v], small_graph.indptr[v + 1]
                seg = w[lo:hi]
                assert np.all(seg[:-1] >= seg[1:] - 1e-12), (kind, v)

    def test_empty_graph(self):
        graph = TemporalGraph.from_stream(EdgeStream.empty(), num_vertices=4)
        assert WeightModel("exponential").compute(graph).size == 0


class TestDynamicForm:
    def test_weight_of_time_exponential(self):
        model = WeightModel("exponential", scale=2.0)
        t = np.array([4.0, 2.0])
        assert np.allclose(model.weight_of_time(t, t_ref=2.0), np.exp([1.0, 0.0]))

    def test_weight_of_time_uniform(self):
        model = WeightModel("uniform")
        assert np.all(model.weight_of_time(np.array([1.0, 9.0])) == 1.0)

    def test_weight_of_time_linear(self):
        model = WeightModel("linear_time")
        assert np.allclose(model.weight_of_time(np.array([3.0]), 1.0), [3.0])
