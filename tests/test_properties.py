"""Property-based tests (hypothesis) for the core invariants.

These encode DESIGN.md §5: trunk decomposition, alias-table mass
conservation, candidate-prefix structure, path validity under arbitrary
graphs, and incremental-vs-static equivalence under arbitrary batch
splits.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.aux_index import AuxiliaryIndex
from repro.core.builder import build_hpat, build_pat, build_prefix_array
from repro.core.incremental import VertexIncrementalHPAT
from repro.core.trunks import binary_decompose, pat_trunk_size
from repro.core.weights import WeightModel
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.rng import make_rng
from repro.sampling.alias import build_alias_arrays, build_alias_arrays_batch

_AUX = AuxiliaryIndex(max_size=1 << 16)


@given(st.integers(min_value=0, max_value=10**9))
def test_binary_decomposition_invariants(size):
    blocks = binary_decompose(size)
    covered = 0
    for level, offset in blocks:
        assert offset == covered
        assert offset % (1 << level) == 0
        covered += 1 << level
    assert covered == size
    assert len(blocks) == bin(size).count("1")


@given(st.integers(min_value=1, max_value=(1 << 16)))
def test_aux_index_matches_decomposition(size):
    levels, cuts = _AUX.lookup(size)
    blocks = binary_decompose(size)
    assert list(levels) == [k for k, _ in blocks]
    assert list(cuts) == [off + (1 << k) for k, off in blocks]


@given(st.integers(min_value=1, max_value=10**7))
def test_pat_trunk_size_sqrt_band(degree):
    ts = pat_trunk_size(degree)
    assert ts >= 1
    assert ts * ts <= degree
    assert (ts + 1) * (ts + 1) > degree


@given(
    st.lists(st.floats(min_value=1e-6, max_value=1e6), min_size=1, max_size=64)
)
def test_alias_table_conserves_mass(weights):
    w = np.asarray(weights)
    prob, alias = build_alias_arrays(w)
    n = w.size
    implied = np.zeros(n)
    for cell in range(n):
        implied[cell] += prob[cell] / n
        implied[alias[cell]] += (1 - prob[cell]) / n
    assert np.allclose(implied, w / w.sum(), rtol=1e-9, atol=1e-12)


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_batch_alias_matches_single(width, tables, seed):
    rng = make_rng(seed)
    rows = rng.uniform(0.001, 100.0, size=(tables, width))
    bprob, balias = build_alias_arrays_batch(rows)
    for i in range(tables):
        implied = np.zeros(width)
        for cell in range(width):
            implied[cell] += bprob[i, cell] / width
            implied[balias[i, cell]] += (1 - bprob[i, cell]) / width
        assert np.allclose(implied, rows[i] / rows[i].sum(), rtol=1e-9)


graph_strategy = st.builds(
    lambda n, edges: TemporalGraph.from_stream(
        EdgeStream(
            [min(u, n - 1) for u, _, _ in edges],
            [min(v, n - 1) for _, v, _ in edges],
            [t for _, _, t in edges],
        ),
        num_vertices=n,
    ),
    st.integers(min_value=2, max_value=12),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=11),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=80,
    ),
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph_strategy, st.integers(min_value=0, max_value=2**31 - 1))
def test_candidate_sets_are_prefixes(graph, seed):
    rng = make_rng(seed)
    for _ in range(10):
        v = int(rng.integers(0, graph.num_vertices))
        t = float(rng.uniform(-1, 101))
        s = graph.candidate_count(v, t)
        _, times = graph.neighbors(v)
        assert np.all(times[:s] > t)
        assert np.all(times[s:] <= t)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph_strategy, st.integers(min_value=0, max_value=2**31 - 1))
def test_samplers_stay_inside_candidate_sets(graph, seed):
    """PAT and HPAT never sample outside the candidate prefix."""
    if graph.num_edges == 0:
        return
    weights = WeightModel("exponential", scale=10.0).compute(graph)
    hpat = build_hpat(graph, weights)
    pat = build_pat(graph, weights)
    rng = make_rng(seed)
    for v in range(graph.num_vertices):
        d = graph.out_degree(v)
        for s in range(1, d + 1):
            for index in (hpat, pat):
                idx = index.sample(v, s, rng)
                assert 0 <= idx < s


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=6),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_incremental_equals_static_weights(batch_sizes, seed):
    """After arbitrary batch splits, the incremental structure holds exactly
    the edges and static weights a from-scratch build would."""
    rng = make_rng(seed)
    total = sum(batch_sizes)
    times = np.sort(rng.uniform(0, 100, total))
    model = WeightModel("exponential", scale=20.0)
    vert = VertexIncrementalHPAT(model)
    pos = 0
    for size in batch_sizes:
        vert.append_batch(np.arange(pos, pos + size), times[pos : pos + size])
        pos += size
    dst, t_desc, w_desc = vert.edges_desc()
    assert list(dst) == list(range(total - 1, -1, -1))
    assert np.allclose(t_desc, times[::-1])
    # Weight ratios must match the exponential form (reference-invariant).
    expected = np.exp((times[::-1] - times[::-1].max()) / 20.0)
    assert np.allclose(w_desc / w_desc.max(), expected, rtol=1e-9)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph_strategy, st.integers(min_value=0, max_value=2**31 - 1))
def test_engine_paths_always_temporal(graph, seed):
    from repro.engines import TeaEngine, Workload
    from repro.graph.validate import is_temporal_path
    from repro.walks.apps import exponential_walk

    engine = TeaEngine(graph, exponential_walk(scale=10.0))
    result = engine.run(Workload(max_length=8, max_walks=10), seed=seed)
    for path in result.paths:
        assert is_temporal_path(graph, path.hops)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph_strategy)
def test_prefix_array_segment_totals(graph):
    weights = WeightModel("linear_rank").compute(graph)
    c = build_prefix_array(graph, weights)
    for v in range(graph.num_vertices):
        lo, hi = graph.indptr[v], graph.indptr[v + 1]
        base = lo + v
        assert c[base] == 0.0
        assert np.isclose(c[base + (hi - lo)], weights[lo:hi].sum())
