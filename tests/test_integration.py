"""End-to-end integration scenarios across subsystem boundaries."""

import numpy as np
import pytest

from repro import (
    StreamingTeaEngine,
    TeaEngine,
    TemporalGraph,
    Workload,
    exponential_walk,
    load_dataset,
    temporal_node2vec,
    unbiased_walk,
)
from repro.embeddings import train_sgns
from repro.engines import BatchTeaEngine, MutableTeaEngine
from repro.graph import io as graph_io
from repro.graph.generators import temporal_powerlaw
from repro.graph.validate import is_temporal_path
from repro.walks.sink import WalkSink, read_walks


class TestFullPipeline:
    """generate → persist → reload → preprocess → walk → sink → embed."""

    def test_pipeline(self, tmp_path):
        stream = temporal_powerlaw(60, 1500, alpha=0.9, time_horizon=200.0, seed=11)
        edge_file = tmp_path / "graph.tegb"
        graph_io.save_binary(stream, edge_file)
        graph = TemporalGraph.from_stream(graph_io.load_auto(edge_file))

        corpus_file = tmp_path / "corpus.twalks"
        engine = BatchTeaEngine(graph, exponential_walk(scale=40.0))
        with WalkSink(corpus_file, flush_threshold=16) as sink:
            result = engine.run(
                Workload(walks_per_vertex=3, max_length=8), seed=0,
                record_paths=False, sink=sink,
            )
        assert result.total_steps > 0

        corpus = list(read_walks(corpus_file))
        assert len(corpus) == 3 * graph.num_vertices
        for walk in corpus[:50]:
            assert is_temporal_path(graph, walk.hops)

        emb = train_sgns(corpus, num_vertices=graph.num_vertices, dim=16,
                         epochs=2, seed=1)
        assert np.isfinite(emb.vectors).all()
        top = emb.most_similar(int(np.argmax(graph.degrees())), k=3)
        assert len(top) == 3


class TestStreamingThenStatic:
    """A stream ingested incrementally equals the same stream built statically."""

    def test_candidate_counts_agree_at_every_batch(self):
        stream = temporal_powerlaw(30, 600, alpha=0.8, time_horizon=100.0, seed=12)
        engine = StreamingTeaEngine(unbiased_walk())
        seen = 0
        for batch in stream.batches(150):
            engine.apply_batch(batch)
            seen += len(batch)
            snapshot = TemporalGraph.from_stream(stream[:seen])
            for v in range(snapshot.num_vertices):
                for t in (None, 25.0, 75.0):
                    assert engine.index.candidate_count(v, t) == \
                        snapshot.candidate_count(v, t), (v, t, seen)


class TestDeletionChurnWithWalks:
    """Interleaved deletes and walks stay consistent over many rounds."""

    def test_rounds(self, small_graph):
        engine = MutableTeaEngine(small_graph, exponential_walk(scale=30.0),
                                  rebuild_threshold=0.3)
        engine.prepare()
        rng = np.random.default_rng(0)
        deleted = set()
        for round_idx in range(5):
            for _ in range(30):
                v = int(rng.integers(0, small_graph.num_vertices))
                d = small_graph.out_degree(v)
                if d:
                    position = int(rng.integers(0, d))
                    engine.index.delete_position(v, position)
                    deleted.add((v, position))
            result = engine.run(Workload(max_length=8, max_walks=20),
                                seed=round_idx)
            for path in result.paths:
                assert is_temporal_path(engine.graph, path.hops)
        assert engine.deletion_stats.deletions == len(deleted)


class TestScaledDatasetsMatchPaperShape:
    """Analogue datasets preserve the relative structure of Table 3."""

    def test_density_ordering(self):
        graphs = {name: load_dataset(name, seed=0, scale=0.2)
                  for name in ("growth", "edit", "delicious", "twitter")}
        means = {n: g.mean_degree() for n, g in graphs.items()}
        # Table 3 ordering of mean degree: edit < growth < delicious < twitter.
        assert means["edit"] < means["growth"] < means["delicious"] < means["twitter"]

    def test_skew_present(self):
        graph = load_dataset("twitter", seed=0, scale=0.2)
        assert graph.max_degree() > 20 * graph.mean_degree()


class TestCrossEngineSeededConsistency:
    """Engines on identical restricted windows see identical subgraphs."""

    def test_time_window_consistency(self, medium_graph):
        spec = unbiased_walk(time_window=(100.0, 400.0))
        engines = [
            TeaEngine(medium_graph, spec),
            BatchTeaEngine(medium_graph, spec),
            MutableTeaEngine(medium_graph, spec),
        ]
        edge_counts = {e.graph.num_edges for e in engines}
        assert len(edge_counts) == 1
        for engine in engines:
            assert engine.graph.etime.min() >= 100.0
            assert engine.graph.etime.max() <= 400.0
