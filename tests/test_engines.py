"""Engines: walk loop, path validity, termination, configuration."""

import numpy as np
import pytest

from repro.engines import (
    CtdneEngine,
    GraphWalkerEngine,
    KnightKingEngine,
    TeaEngine,
    TeaOutOfCoreEngine,
    Workload,
)
from repro.exceptions import SimulatedOOM
from repro.graph.validate import is_temporal_path
from repro.walks.apps import (
    exponential_walk,
    linear_walk,
    temporal_node2vec,
    unbiased_walk,
)

ALL_ENGINES = [
    ("tea-hpat", lambda g, s: TeaEngine(g, s)),
    ("tea-hpat-noindex", lambda g, s: TeaEngine(g, s, use_aux_index=False)),
    ("tea-pat", lambda g, s: TeaEngine(g, s, structure="pat")),
    ("tea-its", lambda g, s: TeaEngine(g, s, structure="its")),
    ("graphwalker", lambda g, s: GraphWalkerEngine(g, s)),
    ("graphwalker-ooc", lambda g, s: GraphWalkerEngine(g, s, out_of_core=True)),
    ("knightking", lambda g, s: KnightKingEngine(g, s)),
    ("ctdne", lambda g, s: CtdneEngine(g, s)),
    ("tea-ooc", lambda g, s: TeaOutOfCoreEngine(g, s, trunk_size=4)),
]

ALL_SPECS = [linear_walk(), exponential_walk(scale=20.0),
             temporal_node2vec(scale=20.0), unbiased_walk()]


class TestWorkload:
    def test_resolve_all_vertices(self):
        wl = Workload(walks_per_vertex=2)
        starts = wl.resolve_starts(5, np.random.default_rng(0))
        assert sorted(starts.tolist()) == sorted(list(range(5)) * 2)

    def test_resolve_subset(self):
        wl = Workload(start_vertices=[1, 3])
        starts = wl.resolve_starts(10, np.random.default_rng(0))
        assert sorted(starts.tolist()) == [1, 3]

    def test_max_walks_caps(self):
        wl = Workload(max_walks=3)
        starts = wl.resolve_starts(100, np.random.default_rng(0))
        assert starts.size == 3

    def test_describe(self):
        assert "R=1" in Workload().describe()


@pytest.mark.parametrize("name,factory", ALL_ENGINES)
@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
class TestEveryEngineEverySpec:
    def test_paths_are_temporal(self, small_graph, name, factory, spec):
        engine = factory(small_graph, spec)
        result = engine.run(Workload(max_length=15, max_walks=25), seed=7)
        assert result.num_walks == 25
        for path in result.paths:
            assert is_temporal_path(engine.graph, path.hops), (name, path.hops)
            assert path.num_edges <= 15

    def test_counters_populated(self, small_graph, name, factory, spec):
        engine = factory(small_graph, spec)
        result = engine.run(Workload(max_length=10, max_walks=10), seed=1)
        if result.total_steps:
            assert result.counters.edges_evaluated > 0
        assert result.memory.total > 0
        assert result.total_seconds >= 0


class TestTermination:
    def test_walk_stops_at_dead_end(self, toy_graph):
        # Vertex 6 has no out-edges: walks from it have zero steps.
        engine = TeaEngine(toy_graph, unbiased_walk())
        result = engine.run(
            Workload(start_vertices=[6], max_length=10), seed=0
        )
        assert result.paths[0].num_edges == 0

    def test_max_length_respected(self, small_graph):
        engine = TeaEngine(small_graph, unbiased_walk())
        result = engine.run(Workload(max_length=3, max_walks=20), seed=0)
        assert all(p.num_edges <= 3 for p in result.paths)

    def test_time_monotone_forces_termination(self, toy_graph):
        # Without L limits, temporal walks still end (times strictly rise).
        engine = TeaEngine(toy_graph, unbiased_walk())
        result = engine.run(Workload(max_length=10_000), seed=0)
        assert all(p.num_edges < 20 for p in result.paths)


class TestTeaConfiguration:
    def test_bad_structure(self, toy_graph):
        with pytest.raises(ValueError):
            TeaEngine(toy_graph, unbiased_walk(), structure="magic")

    def test_alias_structure_oom(self, medium_graph):
        engine = TeaEngine(
            medium_graph, unbiased_walk(), structure="alias",
            alias_budget_bytes=1024,
        )
        with pytest.raises(SimulatedOOM):
            engine.run(Workload(max_walks=1), seed=0)

    def test_alias_structure_works_in_budget(self, toy_graph):
        engine = TeaEngine(toy_graph, linear_walk(), structure="alias")
        result = engine.run(Workload(max_length=5, max_walks=10), seed=0)
        assert result.num_walks == 10

    def test_construction_report_available(self, small_graph):
        engine = TeaEngine(small_graph, exponential_walk())
        engine.prepare()
        assert engine.construction_report.total_seconds > 0

    def test_engine_names(self, toy_graph):
        assert TeaEngine(toy_graph, unbiased_walk()).name == "tea-hpat"
        assert TeaEngine(toy_graph, unbiased_walk(), use_aux_index=False).name == "tea-hpat-noindex"
        assert TeaEngine(toy_graph, unbiased_walk(), structure="pat").name == "tea-pat"

    def test_prepare_idempotent(self, small_graph):
        engine = TeaEngine(small_graph, unbiased_walk())
        engine.prepare()
        index = engine.index
        engine.prepare()
        assert engine.index is index


class TestKnightKing:
    def test_modeled_nodes_divide_time(self, small_graph):
        spec = exponential_walk(scale=20.0)
        wl = Workload(max_length=10, max_walks=30)
        single = KnightKingEngine(small_graph, spec, nodes=1).run(wl, seed=0)
        octo = KnightKingEngine(small_graph, spec, nodes=8).run(wl, seed=0)
        assert octo.time_divisor == 8.0
        # Same sampling work; only the reported wall time scales.
        assert octo.counters.rejection_trials == pytest.approx(
            single.counters.rejection_trials, rel=0.3
        )

    def test_bad_nodes(self, small_graph):
        with pytest.raises(ValueError):
            KnightKingEngine(small_graph, unbiased_walk(), nodes=0)

    def test_expected_trials_skew(self, small_graph):
        """Sharper exponential decay ⇒ more expected trials (Section 3.1)."""
        mild = KnightKingEngine(small_graph, exponential_walk(scale=100.0))
        sharp = KnightKingEngine(small_graph, exponential_walk(scale=5.0))
        v = int(np.argmax(small_graph.degrees()))
        d = small_graph.out_degree(v)
        assert sharp.expected_trials(v, d) > mild.expected_trials(v, d)


class TestEdgesIntervalIntegration:
    def test_time_window_restricts_graph(self, small_graph):
        spec = unbiased_walk(time_window=(50.0, 150.0))
        engine = TeaEngine(small_graph, spec)
        assert engine.graph.num_edges < small_graph.num_edges
        if engine.graph.num_edges:
            assert engine.graph.etime.min() >= 50.0
            assert engine.graph.etime.max() <= 150.0

    def test_walks_respect_window(self, small_graph):
        spec = unbiased_walk(time_window=(50.0, 150.0))
        engine = TeaEngine(small_graph, spec)
        result = engine.run(Workload(max_length=10, max_walks=20), seed=0)
        for path in result.paths:
            for _, t in path.hops[1:]:
                assert 50.0 <= t <= 150.0


class TestResultSummary:
    def test_summary_keys(self, small_graph):
        result = TeaEngine(small_graph, unbiased_walk()).run(
            Workload(max_length=5, max_walks=5), seed=0
        )
        summary = result.summary()
        for key in ("engine", "walks", "steps", "total_s", "edges_per_step"):
            assert key in summary

    def test_record_paths_false(self, small_graph):
        result = TeaEngine(small_graph, unbiased_walk()).run(
            Workload(max_length=5, max_walks=5), seed=0, record_paths=False
        )
        assert result.paths == []
        assert result.total_steps > 0


class TestStopProbability:
    def test_geometric_lengths(self, medium_graph):
        """stop_probability p gives ~geometric walk lengths (mean ≈ the
        min of 1/p and temporal exhaustion)."""
        from repro.engines.batch import BatchTeaEngine

        wl = Workload(max_length=1000, max_walks=400, stop_probability=0.5)
        for cls in (TeaEngine, BatchTeaEngine):
            result = cls(medium_graph, unbiased_walk()).run(wl, seed=0)
            mean_len = np.mean([p.num_edges for p in result.paths])
            assert mean_len < 3.0  # far below the temporal-exhaustion mean

    def test_zero_is_default_behaviour(self, small_graph):
        a = TeaEngine(small_graph, unbiased_walk()).run(
            Workload(max_length=10, max_walks=20), seed=3
        )
        b = TeaEngine(small_graph, unbiased_walk()).run(
            Workload(max_length=10, max_walks=20, stop_probability=0.0), seed=3
        )
        assert [p.hops for p in a.paths] == [p.hops for p in b.paths]

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(stop_probability=1.0)
        with pytest.raises(ValueError):
            Workload(stop_probability=-0.1)


class TestBetaExactFallback:
    def test_extreme_beta_skew_still_correct(self):
        """β so skewed that rejection almost always fails: the exact
        fallback must keep the distribution right (and bounded)."""
        from repro.graph.temporal_graph import TemporalGraph
        from repro.walks.spec import CustomParameter, WalkSpec
        from repro.core.weights import WeightModel
        from tests.conftest import chisquare_ok

        # Vertex 0 has 8 uniform-weight candidates; β crushes all but
        # candidate 1 by a factor of 1e6.
        graph = TemporalGraph.from_edges(
            [(9, 0, 0.5)] + [(0, i + 1, float(i + 1)) for i in range(8)]
        )
        crush = CustomParameter(
            fn=lambda g, prev, cand: 1.0 if cand == 1 else 1e-6,
            beta_max=1.0,
        )
        spec = WalkSpec("crush", WeightModel("uniform"), dynamic_parameter=crush)
        engine = TeaEngine(graph, spec)
        wl = Workload(walks_per_vertex=400, max_length=2, start_vertices=[9])
        result = engine.run(wl, seed=0)
        second_hops = [p.vertices[2] for p in result.paths if p.num_edges == 2]
        assert len(second_hops) == 400  # never deadlocks
        assert sum(1 for v in second_hops if v == 1) / 400 > 0.95
