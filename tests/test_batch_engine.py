"""BatchTeaEngine: vectorised execution ≡ scalar TEA, and faster."""

import numpy as np
import pytest

from repro.engines import TeaEngine, Workload
from repro.engines.batch import BatchTeaEngine
from repro.graph.validate import is_temporal_path
from repro.rng import make_rng
from repro.sampling.counters import CostCounters
from repro.walks.apps import (
    exponential_walk,
    linear_walk,
    temporal_node2vec,
    unbiased_walk,
)
from tests.conftest import chisquare_ok

ALL_SPECS = [linear_walk(), exponential_walk(scale=20.0),
             temporal_node2vec(scale=20.0), unbiased_walk()]


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
class TestBatchExecution:
    def test_paths_are_temporal(self, small_graph, spec):
        engine = BatchTeaEngine(small_graph, spec)
        result = engine.run(Workload(max_length=12, max_walks=40), seed=3)
        assert result.num_walks == 40
        for path in result.paths:
            assert is_temporal_path(engine.graph, path.hops)
            assert path.num_edges <= 12

    def test_steps_counted(self, small_graph, spec):
        result = BatchTeaEngine(small_graph, spec).run(
            Workload(max_length=8, max_walks=20), seed=1
        )
        assert result.total_steps == sum(p.num_edges for p in result.paths)


class TestDistributionEquivalence:
    @pytest.mark.parametrize("spec_fn", [linear_walk,
                                         lambda: exponential_walk(scale=15.0)],
                             ids=["linear", "exponential"])
    def test_batch_sampler_matches_exact(self, small_graph, spec_fn):
        spec = spec_fn()
        engine = BatchTeaEngine(small_graph, spec)
        engine.prepare()
        v = int(np.argmax(small_graph.degrees()))
        d = small_graph.out_degree(v)
        weights = spec.weight_model.compute(small_graph)
        lo = small_graph.indptr[v]
        probs = weights[lo : lo + d] / weights[lo : lo + d].sum()
        rng = make_rng(0)
        counters = CostCounters()
        draws = engine._sample_batch(
            np.full(20000, v), np.full(20000, d), rng, counters
        )
        counts = np.bincount(draws, minlength=d).astype(float)
        assert chisquare_ok(counts, probs)

    def test_batch_sampler_partial_prefixes(self, small_graph):
        spec = exponential_walk(scale=15.0)
        engine = BatchTeaEngine(small_graph, spec)
        engine.prepare()
        v = int(np.argmax(small_graph.degrees()))
        d = small_graph.out_degree(v)
        weights = spec.weight_model.compute(small_graph)
        lo = small_graph.indptr[v]
        rng = make_rng(1)
        for s in {1, 2, 3, d - 1, d // 2}:
            if s < 1:
                continue
            probs = weights[lo : lo + s] / weights[lo : lo + s].sum()
            draws = engine._sample_batch(
                np.full(15000, v), np.full(15000, s), rng, CostCounters()
            )
            assert draws.max() < s
            counts = np.bincount(draws, minlength=s).astype(float)
            assert chisquare_ok(counts, probs), s

    def test_mixed_vertices_in_one_batch(self, small_graph):
        spec = unbiased_walk()
        engine = BatchTeaEngine(small_graph, spec)
        engine.prepare()
        degrees = small_graph.degrees()
        vs = np.flatnonzero(degrees >= 2)[:8]
        rng = make_rng(2)
        batch_v = np.repeat(vs, 2000)
        batch_s = degrees[batch_v]
        draws = engine._sample_batch(batch_v, batch_s, rng, CostCounters())
        assert np.all(draws < batch_s)
        assert np.all(draws >= 0)

    def test_walk_length_distribution_matches_scalar(self, small_graph):
        spec = exponential_walk(scale=20.0)
        wl = Workload(max_length=10)
        scalar = TeaEngine(small_graph, spec).run(wl, seed=9)
        batch = BatchTeaEngine(small_graph, spec).run(wl, seed=9)
        m1 = np.mean([p.num_edges for p in scalar.paths])
        m2 = np.mean([p.num_edges for p in batch.paths])
        assert m2 == pytest.approx(m1, rel=0.12)

    def test_node2vec_beta_matches_scalar(self):
        """β rejection statistics match the scalar engine on the
        return-probe graph from the equivalence suite."""
        from repro.graph.temporal_graph import TemporalGraph

        graph = TemporalGraph.from_edges([(0, 1, 1.0), (1, 0, 2.0), (1, 2, 2.0)])
        spec = temporal_node2vec(p=0.05, q=2.0, scale=1e9)
        wl = Workload(walks_per_vertex=3000, max_length=2, start_vertices=[0])

        def return_rate(engine):
            result = engine.run(wl, seed=4)
            two_hop = [p for p in result.paths if p.num_edges == 2]
            return sum(p.vertices[2] == 0 for p in two_hop) / max(len(two_hop), 1)

        scalar_rate = return_rate(TeaEngine(graph, spec))
        batch_rate = return_rate(BatchTeaEngine(graph, spec))
        assert batch_rate == pytest.approx(scalar_rate, abs=0.04)
        assert batch_rate > 0.9


class TestBetaBatch:
    def test_beta_values(self):
        from repro.graph.temporal_graph import TemporalGraph

        graph = TemporalGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 1.5), (2, 3, 3.0)]
        )
        spec = temporal_node2vec(p=0.5, q=2.0)
        engine = BatchTeaEngine(graph, spec)
        engine.prepare()
        prev = np.array([0, 0, 0])
        cand = np.array([0, 2, 3])  # return / neighbor / distance-2
        b = engine._beta_batch(prev, cand)
        assert b.tolist() == [2.0, 1.0, 0.5]


class TestPerformance:
    def test_batch_walk_phase_faster_than_scalar(self, medium_graph):
        spec = exponential_walk(scale=20.0)
        wl = Workload(walks_per_vertex=5, max_length=20)
        scalar = TeaEngine(medium_graph, spec).run(wl, seed=0, record_paths=False)
        batch = BatchTeaEngine(medium_graph, spec).run(wl, seed=0, record_paths=False)
        # Same sampling semantics, so similar step counts...
        assert batch.total_steps == pytest.approx(scalar.total_steps, rel=0.1)
        # ...but the vectorised frontier should be clearly faster per step.
        scalar_rate = scalar.walk_seconds / max(scalar.total_steps, 1)
        batch_rate = batch.walk_seconds / max(batch.total_steps, 1)
        assert batch_rate < scalar_rate
