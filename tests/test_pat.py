"""Persistent Alias Table: construction, layout, sampling distribution."""

import numpy as np
import pytest

from repro.core.builder import build_pat
from repro.core.weights import WeightModel
from repro.exceptions import EmptyCandidateSetError
from repro.rng import make_rng
from repro.sampling.counters import CostCounters
from tests.conftest import chisquare_ok


@pytest.fixture
def toy_pat(toy_graph):
    weights = WeightModel("linear_rank").compute(toy_graph)
    return build_pat(toy_graph, weights), weights


class TestConstruction:
    def test_trunk_size_sqrt_rule(self, toy_graph, toy_pat):
        pat, _ = toy_pat
        # Vertex 7 has degree 7 → trunkSize floor(sqrt(7)) = 2 (Figure 5).
        assert pat.trunk_sizes[7] == 2

    def test_forced_trunk_size(self, toy_graph):
        weights = WeightModel("uniform").compute(toy_graph)
        pat = build_pat(toy_graph, weights, trunk_size=3)
        assert np.all(pat.trunk_sizes == 3)

    def test_bad_trunk_size(self, toy_graph):
        weights = WeightModel("uniform").compute(toy_graph)
        with pytest.raises(ValueError):
            build_pat(toy_graph, weights, trunk_size=0)

    def test_prefix_sums_figure5(self, toy_graph, toy_pat):
        """Figure 5: trunk prefix sums of vertex 7 are {0, 13, 22, 27, 28}."""
        pat, _ = toy_pat
        base = pat.c_base(7)
        ts = int(pat.trunk_sizes[7])
        bounds = [pat.c[base + min(j * ts, 7)] for j in range(5)]
        assert bounds == [0.0, 13.0, 22.0, 27.0, 28.0]

    def test_candidate_weight(self, toy_pat):
        pat, _ = toy_pat
        assert pat.candidate_weight(7, 3) == 18.0  # weights 7+6+5

    def test_memory_linear_in_edges(self, medium_graph):
        weights = WeightModel("uniform").compute(medium_graph)
        pat = build_pat(medium_graph, weights)
        m = medium_graph.num_edges
        # c: (m + n) floats; alias tables: 2m entries — O(D) per vertex.
        assert pat.nbytes() <= (m + medium_graph.num_vertices) * 8 + m * 16 + m

    def test_breakdown_keys(self, toy_pat):
        pat, _ = toy_pat
        breakdown = pat.memory_breakdown()
        assert set(breakdown) == {"prefix_sums", "alias_tables", "trunk_sizes"}


class TestSampling:
    @pytest.mark.parametrize("s", [1, 2, 3, 4, 5, 6, 7])
    def test_distribution_all_candidate_sizes(self, toy_graph, toy_pat, s):
        pat, weights = toy_pat
        lo = toy_graph.indptr[7]
        probs = weights[lo : lo + s] / weights[lo : lo + s].sum()
        rng = make_rng(s)
        counts = np.zeros(s)
        for _ in range(25000):
            counts[pat.sample(7, s, rng)] += 1
        assert chisquare_ok(counts, probs), f"s={s}"

    def test_complete_trunk_case(self, toy_graph, toy_pat):
        """Figure 5 case ①: arrival (0,7,3) → candidates {6,5,4,3} = two
        complete trunks; samples must stay within the first 4 positions."""
        pat, _ = toy_pat
        rng = make_rng(0)
        for _ in range(200):
            assert pat.sample(7, 4, rng) < 4

    def test_incomplete_trunk_case(self, toy_graph, toy_pat):
        """Figure 5 case ②: arrival (9,7,4) → candidates {6,5,4} — whole
        trunk {6,5} plus half of {4,3}."""
        pat, weights = toy_pat
        rng = make_rng(1)
        counts = np.zeros(3)
        for _ in range(30000):
            counts[pat.sample(7, 3, rng)] += 1
        assert chisquare_ok(counts, np.array([7.0, 6.0, 5.0]) / 18.0)

    def test_empty_candidate_rejected(self, toy_pat):
        pat, _ = toy_pat
        with pytest.raises(EmptyCandidateSetError):
            pat.sample(7, 0, make_rng(0))

    def test_exhaustive_medium_graph(self, medium_graph):
        """Every (vertex, candidate size) on a few vertices: exact match."""
        weights = WeightModel("exponential", scale=20.0).compute(medium_graph)
        pat = build_pat(medium_graph, weights)
        rng = make_rng(3)
        degrees = medium_graph.degrees()
        vs = np.argsort(degrees)[-3:]  # highest-degree vertices
        for v in vs:
            d = int(degrees[v])
            lo = medium_graph.indptr[v]
            for s in {1, 2, d // 2, d}:
                if s < 1:
                    continue
                probs = weights[lo : lo + s] / weights[lo : lo + s].sum()
                counts = np.zeros(s)
                for _ in range(8000):
                    counts[pat.sample(int(v), s, rng)] += 1
                assert chisquare_ok(counts, probs), (v, s)

    def test_probe_cost_sublinear(self, medium_graph):
        """PAT probes per step ≪ candidate size: O(log(D/ts)) + O(1)."""
        weights = WeightModel("uniform").compute(medium_graph)
        pat = build_pat(medium_graph, weights)
        v = int(np.argmax(medium_graph.degrees()))
        d = medium_graph.out_degree(v)
        counters = CostCounters()
        rng = make_rng(0)
        n = 500
        for _ in range(n):
            counters.record_step()
            pat.sample(v, d, rng, counters)
        assert counters.edges_per_step < 3 + np.log2(d)
