"""Engine internals: candidate-weight oracle, strict modes, storage reuse."""

import numpy as np
import pytest

from repro.core.weights import WeightModel
from repro.engines import (
    GraphWalkerEngine,
    KnightKingEngine,
    TeaEngine,
    Workload,
)
from repro.exceptions import SamplingBudgetExceeded
from repro.walks.apps import (
    exponential_walk,
    linear_walk,
    unbiased_walk,
)
from repro.walks.spec import WalkSpec


class TestCandidateWeightsOracle:
    """Engine._candidate_weights must be proportional to the static
    weights on every kind — it backs the exact β fallback."""

    @pytest.mark.parametrize(
        "kind,scale",
        [("uniform", 1.0), ("linear_rank", 1.0), ("linear_time", 1.0),
         ("exponential", 15.0)],
    )
    def test_proportional_to_static_weights(self, small_graph, kind, scale):
        spec = WalkSpec("t", WeightModel(kind, scale))
        engine = TeaEngine(small_graph, spec)
        engine.prepare()
        static = WeightModel(kind, scale).compute(small_graph)
        for v in np.argsort(small_graph.degrees())[-3:]:
            v = int(v)
            d = small_graph.out_degree(v)
            for s in {1, d // 2, d}:
                if s < 1:
                    continue
                oracle = engine._candidate_weights(v, s)
                lo = small_graph.indptr[v]
                expected = static[lo : lo + s]
                ratio = oracle / expected
                assert np.allclose(ratio, ratio[0], rtol=1e-9), (kind, v, s)


class TestKnightKingStrict:
    def test_strict_raises_on_budget(self):
        from repro.graph.temporal_graph import TemporalGraph

        # Extreme skew: one huge weight, many tiny ones.
        edges = [(0, i + 1, float(i)) for i in range(50)] + [(0, 99, 1000.0)]
        graph = TemporalGraph.from_edges(edges)
        engine = KnightKingEngine(
            graph, exponential_walk(scale=1.0), max_trials=1, strict=True
        )
        engine.prepare()
        rng = np.random.default_rng(0)
        from repro.sampling.counters import CostCounters

        with pytest.raises(SamplingBudgetExceeded):
            for _ in range(500):
                engine.sample_edge(0, 51, None, rng, CostCounters())

    def test_nonstrict_falls_back(self):
        from repro.graph.temporal_graph import TemporalGraph

        edges = [(0, i + 1, float(i)) for i in range(50)] + [(0, 99, 1000.0)]
        graph = TemporalGraph.from_edges(edges)
        engine = KnightKingEngine(
            graph, exponential_walk(scale=1.0), max_trials=1, strict=False
        )
        engine.prepare()
        rng = np.random.default_rng(0)
        from repro.sampling.counters import CostCounters

        counters = CostCounters()
        for _ in range(200):
            idx = engine.sample_edge(0, 51, None, rng, counters)
            assert 0 <= idx < 51
        assert counters.edges_evaluated > 0


class TestGraphWalkerStorage:
    def test_explicit_storage_dir(self, small_graph, tmp_path):
        engine = GraphWalkerEngine(
            small_graph, exponential_walk(scale=20.0), out_of_core=True,
            storage_dir=str(tmp_path / "gw"),
        )
        result = engine.run(Workload(max_length=5, max_walks=10), seed=0)
        assert (tmp_path / "gw" / "nbr.bin").exists()
        assert result.counters.io_bytes > 0

    def test_linear_uses_its_not_scan(self, small_graph):
        """Static weights: GraphWalker's per-step cost is logarithmic,
        not a full scan (paper §4.3's complexity table)."""
        its_engine = GraphWalkerEngine(small_graph, linear_walk())
        scan_engine = GraphWalkerEngine(small_graph, exponential_walk(scale=20.0))
        wl = Workload(max_length=10, max_walks=40)
        its_cost = its_engine.run(wl, seed=1).counters.edges_per_step
        scan_cost = scan_engine.run(wl, seed=1).counters.edges_per_step
        assert its_cost < scan_cost


class TestEmptyAndDegenerateGraphs:
    def test_engine_on_empty_graph(self):
        from repro.graph.edge_stream import EdgeStream
        from repro.graph.temporal_graph import TemporalGraph

        graph = TemporalGraph.from_stream(EdgeStream.empty(), num_vertices=4)
        engine = TeaEngine(graph, unbiased_walk())
        result = engine.run(Workload(max_length=5), seed=0)
        assert result.num_walks == 4
        assert result.total_steps == 0

    def test_engine_on_single_edge(self):
        from repro.graph.temporal_graph import TemporalGraph

        graph = TemporalGraph.from_edges([(0, 1, 1.0)])
        engine = TeaEngine(graph, exponential_walk())
        result = engine.run(Workload(max_length=5), seed=0)
        paths = {tuple(p.vertices) for p in result.paths}
        assert paths == {(0, 1), (1,)}

    def test_self_loop_graph(self):
        """Self loops at increasing times are legal temporal edges."""
        from repro.graph.temporal_graph import TemporalGraph

        graph = TemporalGraph.from_edges(
            [(0, 0, float(t)) for t in range(5)]
        )
        engine = TeaEngine(graph, unbiased_walk())
        result = engine.run(Workload(max_length=10), seed=0)
        path = result.paths[0]
        times = [t for _, t in path.hops if t is not None]
        assert times == sorted(times)
        assert all(v == 0 for v in path.vertices)
