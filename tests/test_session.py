"""TeaSession: query serving with engine reuse."""

import pytest

from repro.engines import Workload
from repro.engines.session import TeaSession
from repro.walks.apps import exponential_walk, temporal_node2vec, unbiased_walk


@pytest.fixture
def session(small_graph):
    return TeaSession(small_graph, max_engines=2)


class TestCaching:
    def test_repeat_query_hits(self, session):
        wl = Workload(max_length=5, max_walks=10)
        spec = exponential_walk(scale=20.0)
        session.query(spec, wl, seed=0)
        session.query(spec, wl, seed=1)
        assert session.stats.engine_builds == 1
        assert session.stats.engine_hits == 1
        assert session.stats.hit_rate == 0.5

    def test_equivalent_specs_share_engine(self, session):
        wl = Workload(max_length=5, max_walks=5)
        session.query(exponential_walk(scale=20.0), wl)
        session.query(exponential_walk(scale=20.0), wl)  # fresh object, same key
        assert session.stats.engine_builds == 1

    def test_different_windows_build_separately(self, session):
        wl = Workload(max_length=5, max_walks=5)
        session.query(unbiased_walk(), wl)
        session.query(unbiased_walk(time_window=(0.0, 100.0)), wl)
        assert session.stats.engine_builds == 2

    def test_beta_parameters_distinguish(self, session):
        wl = Workload(max_length=5, max_walks=5)
        session.query(temporal_node2vec(p=0.5, q=2.0, scale=20.0), wl)
        session.query(temporal_node2vec(p=0.25, q=2.0, scale=20.0), wl)
        assert session.stats.engine_builds == 2

    def test_lru_eviction(self, session):
        wl = Workload(max_length=3, max_walks=5)
        session.query(exponential_walk(scale=10.0), wl)
        session.query(exponential_walk(scale=20.0), wl)
        session.query(exponential_walk(scale=30.0), wl)  # evicts scale=10
        assert len(session) == 2
        assert session.stats.evictions == 1
        session.query(exponential_walk(scale=10.0), wl)  # rebuilt
        assert session.stats.engine_builds == 4

    def test_bad_capacity(self, small_graph):
        with pytest.raises(ValueError):
            TeaSession(small_graph, max_engines=0)


class TestResults:
    def test_results_match_direct_engine(self, small_graph):
        from repro.engines.batch import BatchTeaEngine

        wl = Workload(max_length=8, max_walks=20)
        spec = unbiased_walk()
        direct = BatchTeaEngine(small_graph, spec).run(wl, seed=5)
        via_session = TeaSession(small_graph).query(spec, wl, seed=5)
        assert [p.hops for p in direct.paths] == [p.hops for p in via_session.paths]

    def test_scalar_mode(self, small_graph):
        session = TeaSession(small_graph, vectorised=False)
        result = session.query(unbiased_walk(), Workload(max_length=4, max_walks=5))
        assert result.num_walks == 5

    def test_resident_bytes_tracks_cache(self, session):
        wl = Workload(max_length=3, max_walks=3)
        assert session.resident_index_bytes() == 0
        session.query(unbiased_walk(), wl)
        one = session.resident_index_bytes()
        assert one > 0
        session.query(exponential_walk(scale=15.0), wl)
        assert session.resident_index_bytes() > one

    def test_snapshot_keys(self, session):
        session.query(unbiased_walk(), Workload(max_length=2, max_walks=2))
        snap = session.stats.snapshot()
        assert {"queries", "engine_hits", "engine_builds", "hit_rate"} <= set(snap)


class TestByteBudget:
    """Eviction under a resident-index byte budget (serving config)."""

    def _specs(self):
        return [exponential_walk(scale=s) for s in (10.0, 20.0, 30.0)]

    def test_zero_budget_keeps_exactly_one(self, small_graph):
        session = TeaSession(small_graph, max_engines=8, max_bytes=0)
        wl = Workload(max_length=4, max_walks=5)
        for spec in self._specs():
            session.query(spec, wl)
            assert len(session) == 1  # never evicted below the newest
        assert session.stats.engine_builds == 3
        assert session.stats.evictions == 2
        assert session.resident_index_bytes() > 0  # budget floor, not zero

    def test_tiny_budget_tracks_one_index(self, small_graph):
        probe = TeaSession(small_graph, max_engines=8)
        probe.query(exponential_walk(scale=10.0), Workload(max_length=4, max_walks=5))
        one_index = probe.resident_index_bytes()
        probe.close()

        session = TeaSession(small_graph, max_engines=8, max_bytes=one_index)
        wl = Workload(max_length=4, max_walks=5)
        for spec in self._specs():
            session.query(spec, wl)
        assert len(session) == 1
        assert session.resident_index_bytes() <= one_index

    def test_generous_budget_never_evicts(self, small_graph):
        session = TeaSession(small_graph, max_engines=8, max_bytes=1 << 40)
        wl = Workload(max_length=4, max_walks=5)
        for spec in self._specs():
            session.query(spec, wl)
        assert len(session) == 3
        assert session.stats.evictions == 0

    def test_negative_budget_rejected(self, small_graph):
        with pytest.raises(ValueError):
            TeaSession(small_graph, max_bytes=-1)

    def test_hit_rate_accounting_survives_evictions(self, small_graph):
        session = TeaSession(small_graph, max_engines=1)
        wl = Workload(max_length=4, max_walks=5)
        a = exponential_walk(scale=10.0)
        b = exponential_walk(scale=20.0)
        session.query(a, wl)   # build a
        session.query(a, wl)   # hit
        session.query(b, wl)   # build b, evicts a
        session.query(a, wl)   # rebuild a (must NOT count as a hit)
        assert session.stats.queries == 4
        assert session.stats.engine_hits == 1
        assert session.stats.engine_builds == 3
        assert session.stats.evictions == 2
        assert session.stats.hit_rate == 0.25


class TestSpecKeying:
    """The cache key must reflect weight-model *structure*."""

    def test_custom_parameters_with_distinct_fns_do_not_alias(self, small_graph):
        from repro.core.weights import WeightModel
        from repro.walks.spec import CustomParameter, WalkSpec

        session = TeaSession(small_graph, max_engines=4)
        wl = Workload(max_length=4, max_walks=5)
        half = CustomParameter(fn=lambda g, p, c: 0.5, beta_max=1.0, name="half")
        full = CustomParameter(fn=lambda g, p, c: 1.0, beta_max=1.0, name="full")
        wm = WeightModel(kind="uniform")
        session.query(WalkSpec("a", wm, dynamic_parameter=half), wl)
        session.query(WalkSpec("b", wm, dynamic_parameter=full), wl)
        # Same beta_max, same type, different functions: two engines.
        assert session.stats.engine_builds == 2
        session.query(WalkSpec("c", wm, dynamic_parameter=half), wl)
        assert session.stats.engine_hits == 1

    def test_weight_model_scale_distinguishes(self, small_graph):
        session = TeaSession(small_graph, max_engines=4)
        wl = Workload(max_length=4, max_walks=5)
        session.query(exponential_walk(scale=10.0), wl)
        session.query(exponential_walk(scale=10.0 + 1e-9), wl)
        assert session.stats.engine_builds == 2

    def test_spec_name_is_not_structure(self, small_graph):
        from repro.walks.spec import WalkSpec

        session = TeaSession(small_graph, max_engines=4)
        wl = Workload(max_length=4, max_walks=5)
        spec = exponential_walk(scale=10.0)
        renamed = WalkSpec("other-label", spec.weight_model,
                           spec.dynamic_parameter, spec.time_window)
        session.query(spec, wl)
        session.query(renamed, wl)
        assert session.stats.engine_builds == 1


class TestEngineKinds:
    def test_unknown_kind_rejected(self, small_graph):
        with pytest.raises(ValueError):
            TeaSession(small_graph, engine="tea-warp")

    def test_scalar_kind_maps_to_vectorised_false(self, small_graph):
        session = TeaSession(small_graph, engine="tea")
        assert session.vectorised is False
        session = TeaSession(small_graph, vectorised=False)
        assert session.engine_kind == "tea"

    def test_parallel_kind_invariant_across_configs(self, small_graph):
        """Session-served tea-parallel results depend only on the query
        seed — never on backend or chunking (the PR 7 contract, now
        holding through the session layer)."""
        wl = Workload(max_length=6, max_walks=20)
        spec = exponential_walk(scale=20.0)
        outcomes = []
        for kwargs in (
            {"backend": "serial", "chunk_size": 4},
            {"backend": "thread", "workers": 2, "chunk_size": 2},
        ):
            with TeaSession(
                small_graph, engine="tea-parallel", engine_kwargs=kwargs
            ) as session:
                result = session.query(spec, wl, seed=5)
                outcomes.append([p.hops for p in result.paths])
        assert outcomes[0] == outcomes[1]


class TestLifecycle:
    def test_eviction_closes_engine(self, small_graph):
        session = TeaSession(small_graph, max_engines=1)
        wl = Workload(max_length=4, max_walks=5)
        session.query(exponential_walk(scale=10.0), wl)
        closed = []
        engine = next(iter(session._engines.values()))
        engine.close = lambda: closed.append("evicted")  # instance spy
        session.query(exponential_walk(scale=20.0), wl)  # evicts the first
        assert closed == ["evicted"]

    def test_close_empties_and_closes_all(self, small_graph):
        session = TeaSession(small_graph, max_engines=4)
        wl = Workload(max_length=4, max_walks=5)
        session.query(exponential_walk(scale=10.0), wl)
        session.query(exponential_walk(scale=20.0), wl)
        closed = []
        for engine in session._engines.values():
            engine.close = lambda: closed.append(1)
        session.close()
        assert len(session) == 0
        assert len(closed) == 2
        assert session.resident_index_bytes() == 0
        # close() is not an eviction for accounting purposes.
        assert session.stats.evictions == 0

    def test_context_manager_closes(self, small_graph):
        with TeaSession(small_graph, max_engines=2) as session:
            session.query(exponential_walk(scale=10.0),
                          Workload(max_length=4, max_walks=5))
            assert len(session) == 1
        assert len(session) == 0
