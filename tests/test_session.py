"""TeaSession: query serving with engine reuse."""

import pytest

from repro.engines import Workload
from repro.engines.session import TeaSession
from repro.walks.apps import exponential_walk, temporal_node2vec, unbiased_walk


@pytest.fixture
def session(small_graph):
    return TeaSession(small_graph, max_engines=2)


class TestCaching:
    def test_repeat_query_hits(self, session):
        wl = Workload(max_length=5, max_walks=10)
        spec = exponential_walk(scale=20.0)
        session.query(spec, wl, seed=0)
        session.query(spec, wl, seed=1)
        assert session.stats.engine_builds == 1
        assert session.stats.engine_hits == 1
        assert session.stats.hit_rate == 0.5

    def test_equivalent_specs_share_engine(self, session):
        wl = Workload(max_length=5, max_walks=5)
        session.query(exponential_walk(scale=20.0), wl)
        session.query(exponential_walk(scale=20.0), wl)  # fresh object, same key
        assert session.stats.engine_builds == 1

    def test_different_windows_build_separately(self, session):
        wl = Workload(max_length=5, max_walks=5)
        session.query(unbiased_walk(), wl)
        session.query(unbiased_walk(time_window=(0.0, 100.0)), wl)
        assert session.stats.engine_builds == 2

    def test_beta_parameters_distinguish(self, session):
        wl = Workload(max_length=5, max_walks=5)
        session.query(temporal_node2vec(p=0.5, q=2.0, scale=20.0), wl)
        session.query(temporal_node2vec(p=0.25, q=2.0, scale=20.0), wl)
        assert session.stats.engine_builds == 2

    def test_lru_eviction(self, session):
        wl = Workload(max_length=3, max_walks=5)
        session.query(exponential_walk(scale=10.0), wl)
        session.query(exponential_walk(scale=20.0), wl)
        session.query(exponential_walk(scale=30.0), wl)  # evicts scale=10
        assert len(session) == 2
        assert session.stats.evictions == 1
        session.query(exponential_walk(scale=10.0), wl)  # rebuilt
        assert session.stats.engine_builds == 4

    def test_bad_capacity(self, small_graph):
        with pytest.raises(ValueError):
            TeaSession(small_graph, max_engines=0)


class TestResults:
    def test_results_match_direct_engine(self, small_graph):
        from repro.engines.batch import BatchTeaEngine

        wl = Workload(max_length=8, max_walks=20)
        spec = unbiased_walk()
        direct = BatchTeaEngine(small_graph, spec).run(wl, seed=5)
        via_session = TeaSession(small_graph).query(spec, wl, seed=5)
        assert [p.hops for p in direct.paths] == [p.hops for p in via_session.paths]

    def test_scalar_mode(self, small_graph):
        session = TeaSession(small_graph, vectorised=False)
        result = session.query(unbiased_walk(), Workload(max_length=4, max_walks=5))
        assert result.num_walks == 5

    def test_resident_bytes_tracks_cache(self, session):
        wl = Workload(max_length=3, max_walks=3)
        assert session.resident_index_bytes() == 0
        session.query(unbiased_walk(), wl)
        one = session.resident_index_bytes()
        assert one > 0
        session.query(exponential_walk(scale=15.0), wl)
        assert session.resident_index_bytes() > one

    def test_snapshot_keys(self, session):
        session.query(unbiased_walk(), Workload(max_length=2, max_walks=2))
        snap = session.stats.snapshot()
        assert {"queries", "engine_hits", "engine_builds", "hit_rate"} <= set(snap)
