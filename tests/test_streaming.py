"""StreamingTeaEngine: interleaved ingestion and walking."""

import numpy as np
import pytest

from repro.exceptions import NotSupportedError
from repro.graph.generators import temporal_powerlaw
from repro.streaming.batch import StreamingTeaEngine
from repro.walks.apps import exponential_walk, temporal_node2vec, unbiased_walk


@pytest.fixture
def stream():
    return temporal_powerlaw(num_vertices=40, num_edges=600, seed=2, time_horizon=100.0)


class TestIngestion:
    def test_batched_ingest(self, stream):
        engine = StreamingTeaEngine(unbiased_walk())
        batches = engine.ingest(stream, batch_size=100)
        assert batches == 6
        assert engine.num_edges == 600

    def test_node2vec_rejected(self):
        with pytest.raises(NotSupportedError):
            StreamingTeaEngine(temporal_node2vec())

    def test_active_vertices(self, stream):
        engine = StreamingTeaEngine(unbiased_walk())
        engine.ingest(stream, 200)
        active = engine.active_vertices()
        assert active == sorted(set(stream.src.tolist()))

    def test_nbytes_positive(self, stream):
        engine = StreamingTeaEngine(unbiased_walk())
        engine.ingest(stream, 300)
        assert engine.nbytes() > 0


class TestWalking:
    def test_paths_are_temporal(self, stream):
        engine = StreamingTeaEngine(exponential_walk(scale=20.0))
        engine.ingest(stream, 150)
        paths = engine.run_walks(engine.active_vertices()[:20], max_length=10, seed=0)
        assert len(paths) == 20
        for path in paths:
            times = [t for _, t in path.hops if t is not None]
            assert times == sorted(times)
            assert len(set(times)) == len(times)  # strictly increasing

    def test_walks_see_new_edges(self):
        """After a batch arrives, walks can traverse its edges."""
        engine = StreamingTeaEngine(unbiased_walk())
        from repro.graph.edge_stream import EdgeStream

        engine.apply_batch(EdgeStream.from_edges([(0, 1, 1.0)]))
        path1 = engine.walk(0, max_length=5, seed=0)
        assert path1.vertices == [0, 1]
        engine.apply_batch(EdgeStream.from_edges([(1, 2, 2.0)]))
        path2 = engine.walk(0, max_length=5, seed=0)
        assert path2.vertices == [0, 1, 2]

    def test_walk_from_inactive_vertex(self, stream):
        engine = StreamingTeaEngine(unbiased_walk())
        engine.ingest(stream, 200)
        isolated = max(engine.active_vertices()) + 1
        path = engine.walk(isolated, max_length=5, seed=0)
        assert path.num_edges == 0

    def test_counters_accumulate(self, stream):
        engine = StreamingTeaEngine(unbiased_walk())
        engine.ingest(stream, 300)
        engine.run_walks(engine.active_vertices()[:10], max_length=5, seed=1)
        assert engine.counters.steps > 0


class TestEquivalenceWithStatic:
    def test_distribution_matches_static_engine(self, stream):
        """Streaming-ingested index samples like the static TEA engine."""
        from repro.engines import TeaEngine
        from repro.graph.temporal_graph import TemporalGraph
        from repro.rng import make_rng
        from tests.conftest import chisquare_ok

        spec = exponential_walk(scale=25.0)
        streaming = StreamingTeaEngine(spec)
        streaming.ingest(stream, 97)
        graph = TemporalGraph.from_stream(stream)
        static = TeaEngine(graph, spec)
        static.prepare()

        v = int(np.argmax(graph.degrees()))
        d = graph.out_degree(v)
        nbrs, _ = graph.neighbors(v)
        weights = spec.weight_model.compute(graph)
        lo = graph.indptr[v]
        # Exact distribution over destination vertices (may repeat).
        probs = {}
        for j in range(d):
            probs[int(nbrs[j])] = probs.get(int(nbrs[j]), 0.0) + weights[lo + j]
        keys = sorted(probs)
        exact = np.array([probs[k] for k in keys])
        exact /= exact.sum()

        rng = make_rng(0)
        counts = np.zeros(len(keys))
        key_pos = {k: i for i, k in enumerate(keys)}
        for _ in range(15000):
            dst, _ = streaming.index.sample(v, d, rng)
            counts[key_pos[dst]] += 1
        assert chisquare_ok(counts, exact)


def _decay_spec(scale: float = 20.0):
    from repro.core.weights import WeightModel
    from repro.walks.spec import WalkSpec

    return WalkSpec(
        name="decay", weight_model=WeightModel("exponential_decay", scale=scale)
    )


def _hops(engine_or_view, starts, seed=5, max_length=12):
    return [
        w.hops
        for w in engine_or_view.run_walks(starts, max_length=max_length,
                                          seed=seed)
    ]


class TestBulkIngest:
    def test_add_multiple_edges_matches_batched(self, stream):
        """Decay forest is batch-boundary-canonical: bulk == batched."""
        bulk = StreamingTeaEngine(_decay_spec())
        out = bulk.add_multiple_edges(stream.src, stream.dst, stream.time)
        assert out == {"edges": 600, "epoch": 1, "num_edges": 600}
        batched = StreamingTeaEngine(_decay_spec())
        batched.ingest(stream, batch_size=75)
        starts = bulk.active_vertices()[:10]
        assert _hops(bulk, starts) == _hops(batched, starts)

    def test_unsorted_columns_rejected(self, stream):
        from repro.exceptions import GraphFormatError

        engine = StreamingTeaEngine(_decay_spec())
        with pytest.raises(GraphFormatError):
            engine.add_multiple_edges(
                stream.src, stream.dst, stream.time[::-1]
            )
        assert engine.num_edges == 0 and engine.epoch == 0


class TestEpochIsolation:
    def test_pinned_epoch_is_byte_stable(self, stream):
        engine = StreamingTeaEngine(exponential_walk(scale=20.0),
                                    retain_epochs=16)
        engine.apply_batch(stream[:300])
        pinned = engine.pin()
        starts = pinned.active_vertices()[:10]
        before = _hops(pinned, starts)
        for batch in stream[300:].batches(60):
            engine.apply_batch(batch)
        assert _hops(pinned, starts) == before
        current = engine.pin()
        assert current.epoch > pinned.epoch
        assert current.num_edges == 600
        assert _hops(current, starts) != before

    def test_pin_by_id_and_retirement(self, stream):
        from repro.exceptions import EpochRetiredError

        engine = StreamingTeaEngine(exponential_walk(scale=20.0),
                                    retain_epochs=2)
        for batch in stream.batches(100):
            engine.apply_batch(batch)
        assert engine.pin(engine.epoch).epoch == engine.epoch
        assert engine.pin(engine.epoch - 1).epoch == engine.epoch - 1
        with pytest.raises(EpochRetiredError):
            engine.pin(1)

    def test_reader_writer_stress(self, stream):
        """Pinned-epoch walks byte-stable under *concurrent* ingest."""
        import threading

        engine = StreamingTeaEngine(exponential_walk(scale=20.0),
                                    retain_epochs=64)
        engine.apply_batch(stream[:200])
        pinned = engine.pin()
        starts = pinned.active_vertices()[:8]
        reference = _hops(pinned, starts)

        failures = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                if _hops(pinned, starts) != reference:
                    failures.append("pinned walks drifted")
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for batch in stream[200:].batches(20):
                engine.apply_batch(batch)
        finally:
            done.set()
            thread.join(30)
        assert not thread.is_alive()
        assert not failures
        assert _hops(pinned, starts) == reference
        assert engine.num_edges == 600


class TestDurability:
    def test_close_reopen_bit_identical(self, stream, tmp_path):
        with StreamingTeaEngine(exponential_walk(scale=20.0),
                                wal_dir=tmp_path) as engine:
            engine.ingest(stream, batch_size=90)
            epoch = engine.epoch
            starts = engine.active_vertices()[:10]
            want = _hops(engine, starts)
        with StreamingTeaEngine(exponential_walk(scale=20.0),
                                wal_dir=tmp_path) as recovered:
            assert recovered.epoch == epoch
            assert recovered.recovered_edges == 600
            assert _hops(recovered, starts) == want

    def test_checkpoint_bounds_replay(self, stream, tmp_path):
        spec = _decay_spec()
        with StreamingTeaEngine(spec, wal_dir=tmp_path) as engine:
            engine.ingest(stream[:400], batch_size=100)
            engine.checkpoint()
            engine.ingest(stream[400:], batch_size=100)
            starts = engine.active_vertices()[:10]
            want = _hops(engine, starts)
        with StreamingTeaEngine(spec, wal_dir=tmp_path) as recovered:
            # 4 batches come from the checkpoint, 2 from the WAL suffix,
            # and the index walks identically either way.
            assert recovered.recovered_batches == 6
            assert recovered.epoch == 6
            assert _hops(recovered, starts) == want

    def test_recovery_after_hard_crash_mid_stream(self, stream, tmp_path):
        """Durable prefix survives even when close() never runs."""
        spec = _decay_spec()
        engine = StreamingTeaEngine(spec, wal_dir=tmp_path)
        for batch in stream.batches(150):
            engine.apply_batch(batch, sync=True)
        starts = engine.active_vertices()[:10]
        want = _hops(engine, starts)
        # No close(): simulate the process dying with the fd open.
        del engine
        with StreamingTeaEngine(spec, wal_dir=tmp_path) as recovered:
            assert recovered.epoch == 4
            assert _hops(recovered, starts) == want

    def test_wal_append_fault_rolls_back_index(self, stream, tmp_path):
        """A batch whose WAL write fails must vanish from the index."""
        from repro.exceptions import TransientIOError
        from repro.resilience import FaultInjector

        spec = _decay_spec()
        injector = FaultInjector.from_plan(
            {"rules": [
                {"site": "wal_append", "kind": "io_error", "calls": [1]}
            ]}
        )
        engine = StreamingTeaEngine(spec, wal_dir=tmp_path,
                                    fault_injector=injector)
        batches = list(stream.batches(200))
        engine.apply_batch(batches[0])
        starts = engine.active_vertices()[:10]
        want = _hops(engine, starts)
        with pytest.raises(TransientIOError):
            engine.apply_batch(batches[1])
        assert engine.num_edges == 200 and engine.epoch == 1
        assert _hops(engine, starts) == want
        # The retry succeeds and the engine continues normally.
        engine.apply_batch(batches[1])
        engine.apply_batch(batches[2])
        assert engine.num_edges == 600 and engine.epoch == 3
        engine.close()


class TestStreamService:
    """The serving bridge, exercised without a daemon."""

    def _service(self, stream):
        from repro.serve.streaming import StreamService

        engine = StreamingTeaEngine(_decay_spec(), retain_epochs=8)
        engine.apply_batch(stream[:300])
        return StreamService(engine), engine

    def test_ingest_walk_roundtrip(self, stream):
        service, engine = self._service(stream)
        starts = engine.active_vertices()[:6]
        pinned = service.walk({"starts": starts, "seed": 3, "epoch": 1},
                              kind="walk")
        out = service.ingest({
            "src": stream.src[300:].tolist(),
            "dst": stream.dst[300:].tolist(),
            "time": stream.time[300:].tolist(),
        })
        assert out["epoch"] == 2 and out["num_edges"] == 600
        again = service.walk({"starts": starts, "seed": 3, "epoch": 1},
                             kind="walk")
        assert again["walks"] == pinned["walks"]
        assert again["times"] == pinned["times"]
        current = service.walk({"starts": starts, "seed": 3}, kind="walk")
        assert current["epoch"] == 2 and current["num_edges"] == 600

    def test_recommend_and_epoch_info(self, stream):
        service, engine = self._service(stream)
        starts = engine.active_vertices()[:6]
        out = service.walk({"starts": starts, "top_k": 3}, kind="recommend")
        assert len(out["recommendations"]) <= 3
        assert all(v not in starts for v, _ in out["recommendations"])
        info = service.epoch_info()
        assert info["epoch"] == 1 and info["durable"] is False

    def test_validation_and_status_codes(self, stream):
        from repro.exceptions import ServeError

        service, _ = self._service(stream)
        with pytest.raises(ServeError) as exc:
            service.ingest({"src": [1], "dst": [2]})
        assert exc.value.status == 400
        with pytest.raises(ServeError) as exc:
            service.ingest({"src": [1], "dst": [2], "time": [0.0]})
        assert exc.value.status == 400  # precedes existing edges
        with pytest.raises(ServeError) as exc:
            service.walk({"starts": [0], "epoch": 99}, kind="walk")
        assert exc.value.status == 410
