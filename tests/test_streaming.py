"""StreamingTeaEngine: interleaved ingestion and walking."""

import numpy as np
import pytest

from repro.exceptions import NotSupportedError
from repro.graph.generators import temporal_powerlaw
from repro.streaming.batch import StreamingTeaEngine
from repro.walks.apps import exponential_walk, temporal_node2vec, unbiased_walk


@pytest.fixture
def stream():
    return temporal_powerlaw(num_vertices=40, num_edges=600, seed=2, time_horizon=100.0)


class TestIngestion:
    def test_batched_ingest(self, stream):
        engine = StreamingTeaEngine(unbiased_walk())
        batches = engine.ingest(stream, batch_size=100)
        assert batches == 6
        assert engine.num_edges == 600

    def test_node2vec_rejected(self):
        with pytest.raises(NotSupportedError):
            StreamingTeaEngine(temporal_node2vec())

    def test_active_vertices(self, stream):
        engine = StreamingTeaEngine(unbiased_walk())
        engine.ingest(stream, 200)
        active = engine.active_vertices()
        assert active == sorted(set(stream.src.tolist()))

    def test_nbytes_positive(self, stream):
        engine = StreamingTeaEngine(unbiased_walk())
        engine.ingest(stream, 300)
        assert engine.nbytes() > 0


class TestWalking:
    def test_paths_are_temporal(self, stream):
        engine = StreamingTeaEngine(exponential_walk(scale=20.0))
        engine.ingest(stream, 150)
        paths = engine.run_walks(engine.active_vertices()[:20], max_length=10, seed=0)
        assert len(paths) == 20
        for path in paths:
            times = [t for _, t in path.hops if t is not None]
            assert times == sorted(times)
            assert len(set(times)) == len(times)  # strictly increasing

    def test_walks_see_new_edges(self):
        """After a batch arrives, walks can traverse its edges."""
        engine = StreamingTeaEngine(unbiased_walk())
        from repro.graph.edge_stream import EdgeStream

        engine.apply_batch(EdgeStream.from_edges([(0, 1, 1.0)]))
        path1 = engine.walk(0, max_length=5, seed=0)
        assert path1.vertices == [0, 1]
        engine.apply_batch(EdgeStream.from_edges([(1, 2, 2.0)]))
        path2 = engine.walk(0, max_length=5, seed=0)
        assert path2.vertices == [0, 1, 2]

    def test_walk_from_inactive_vertex(self, stream):
        engine = StreamingTeaEngine(unbiased_walk())
        engine.ingest(stream, 200)
        isolated = max(engine.active_vertices()) + 1
        path = engine.walk(isolated, max_length=5, seed=0)
        assert path.num_edges == 0

    def test_counters_accumulate(self, stream):
        engine = StreamingTeaEngine(unbiased_walk())
        engine.ingest(stream, 300)
        engine.run_walks(engine.active_vertices()[:10], max_length=5, seed=1)
        assert engine.counters.steps > 0


class TestEquivalenceWithStatic:
    def test_distribution_matches_static_engine(self, stream):
        """Streaming-ingested index samples like the static TEA engine."""
        from repro.engines import TeaEngine
        from repro.graph.temporal_graph import TemporalGraph
        from repro.rng import make_rng
        from tests.conftest import chisquare_ok

        spec = exponential_walk(scale=25.0)
        streaming = StreamingTeaEngine(spec)
        streaming.ingest(stream, 97)
        graph = TemporalGraph.from_stream(stream)
        static = TeaEngine(graph, spec)
        static.prepare()

        v = int(np.argmax(graph.degrees()))
        d = graph.out_degree(v)
        nbrs, _ = graph.neighbors(v)
        weights = spec.weight_model.compute(graph)
        lo = graph.indptr[v]
        # Exact distribution over destination vertices (may repeat).
        probs = {}
        for j in range(d):
            probs[int(nbrs[j])] = probs.get(int(nbrs[j]), 0.0) + weights[lo + j]
        keys = sorted(probs)
        exact = np.array([probs[k] for k in keys])
        exact /= exact.sum()

        rng = make_rng(0)
        counts = np.zeros(len(keys))
        key_pos = {k: i for i, k in enumerate(keys)}
        for _ in range(15000):
            dst, _ = streaming.index.sample(v, d, rng)
            counts[key_pos[dst]] += 1
        assert chisquare_ok(counts, exact)
