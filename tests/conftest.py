"""Shared fixtures for the TEA reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import temporal_powerlaw, toy_commute_graph
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture
def toy_graph() -> TemporalGraph:
    """The paper's Figure 1 commute network (vertex 7 is the worked example)."""
    return TemporalGraph.from_stream(toy_commute_graph())


@pytest.fixture(scope="session")
def small_graph() -> TemporalGraph:
    """A power-law temporal graph small enough for exhaustive checks."""
    return TemporalGraph.from_stream(
        temporal_powerlaw(num_vertices=50, num_edges=900, alpha=0.8,
                          time_horizon=200.0, seed=123)
    )


@pytest.fixture(scope="session")
def medium_graph() -> TemporalGraph:
    """A graph big enough that trunk hierarchies have several levels."""
    return TemporalGraph.from_stream(
        temporal_powerlaw(num_vertices=200, num_edges=8000, alpha=1.0,
                          time_horizon=500.0, seed=7)
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def exact_prefix_distribution(weights_desc: np.ndarray, s: int) -> np.ndarray:
    """Ground-truth transition probabilities over a candidate prefix."""
    w = np.asarray(weights_desc[:s], dtype=np.float64)
    return w / w.sum()


def chisquare_ok(counts: np.ndarray, probs: np.ndarray, alpha: float = 1e-4) -> bool:
    """Conservative chi-square goodness-of-fit acceptance.

    Returns True when the empirical counts are consistent with ``probs``.
    Bins with expected count < 5 are pooled (classic validity rule —
    heavy-tail temporal weights produce astronomically small tail
    probabilities that would otherwise invalidate the statistic). The
    significance level is deliberately tiny so the suite stays stable
    across seeds while still catching genuinely wrong distributions.
    """
    from scipy import stats

    counts = np.asarray(counts, dtype=np.float64)
    probs = np.asarray(probs, dtype=np.float64)
    n = counts.sum()
    expected = probs * n
    order = np.argsort(expected)[::-1]
    counts, expected = counts[order], expected[order]
    # Pool the tail so every compared bin has expected >= 5.
    big = expected >= 5.0
    pooled_counts = list(counts[big])
    pooled_expected = list(expected[big])
    tail_c, tail_e = counts[~big].sum(), expected[~big].sum()
    if tail_e > 0:
        pooled_counts.append(tail_c)
        pooled_expected.append(tail_e)
    pc = np.asarray(pooled_counts)
    pe = np.asarray(pooled_expected)
    dof = pc.size - 1
    if dof <= 0:
        return True
    stat = float(((pc - pe) ** 2 / pe).sum())
    return stat < stats.chi2.ppf(1 - alpha, dof)
