"""WalkSpec, applications, and the temporal-centric API surface."""

import numpy as np
import pytest

from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.walks.apps import (
    APPLICATIONS,
    exponential_walk,
    linear_walk,
    temporal_node2vec,
    unbiased_walk,
)
from repro.walks.spec import Node2VecParameter, WalkSpec
from repro.walks.walker import Walker, WalkPath


class TestApplications:
    def test_registry_complete(self):
        assert set(APPLICATIONS) == {"linear", "exponential", "node2vec", "unbiased"}

    def test_linear_uses_rank(self):
        assert linear_walk().weight_model.kind == "linear_rank"

    def test_exponential_scale(self):
        assert exponential_walk(scale=7.0).weight_model.scale == 7.0

    def test_node2vec_has_beta(self):
        spec = temporal_node2vec(p=0.25, q=4.0)
        assert spec.has_dynamic_parameter
        assert spec.dynamic_parameter.p == 0.25
        assert spec.dynamic_parameter.beta_max == 4.0

    def test_unbiased_uniform(self):
        assert unbiased_walk().weight_model.kind == "uniform"

    def test_describe(self):
        text = temporal_node2vec().describe()
        assert "node2vec" in text and "beta" in text


class TestNode2VecParameter:
    @pytest.fixture
    def graph(self):
        return TemporalGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 1.5), (2, 3, 3.0)]
        )

    def test_return_distance_zero(self, graph):
        beta = Node2VecParameter(p=0.5, q=2.0)
        assert beta(graph, prev_vertex=0, candidate_vertex=0) == 2.0  # 1/p

    def test_common_neighbor_distance_one(self, graph):
        beta = Node2VecParameter(p=0.5, q=2.0)
        # prev=0, candidate=2: 0-2 edge exists → d=1 → β=1.
        assert beta(graph, prev_vertex=0, candidate_vertex=2) == 1.0

    def test_distance_two(self, graph):
        beta = Node2VecParameter(p=0.5, q=2.0)
        # prev=0, candidate=3: not adjacent → β = 1/q.
        assert beta(graph, prev_vertex=0, candidate_vertex=3) == 0.5

    def test_first_hop_accepts(self, graph):
        beta = Node2VecParameter(p=0.5, q=2.0)
        assert beta(graph, prev_vertex=None, candidate_vertex=3) == beta.beta_max

    def test_beta_max(self):
        assert Node2VecParameter(p=0.1, q=2.0).beta_max == 10.0
        assert Node2VecParameter(p=2.0, q=0.25).beta_max == 4.0
        assert Node2VecParameter(p=2.0, q=2.0).beta_max == 1.0


class TestEdgesInterval:
    def test_spec_interval(self):
        stream = EdgeStream.from_edges([(0, 1, float(t)) for t in range(10)])
        spec = WalkSpec("w", unbiased_walk().weight_model, time_window=(2.0, 5.0))
        sub = spec.edges_interval(stream)
        assert len(sub) == 4

    def test_no_window_identity(self):
        stream = EdgeStream.from_edges([(0, 1, 1.0)])
        spec = unbiased_walk()
        assert spec.edges_interval(stream) is stream

    def test_restrict_preserves_vertex_space(self):
        stream = EdgeStream.from_edges([(0, 9, 1.0), (9, 0, 5.0)])
        graph = TemporalGraph.from_stream(stream)
        spec = unbiased_walk(time_window=(0.0, 2.0))
        restricted = spec.restrict(graph)
        assert restricted.num_vertices == graph.num_vertices
        assert restricted.num_edges == 1


class TestWalker:
    def test_initial_state(self):
        walker = Walker(5)
        assert walker.current_vertex == 5
        assert walker.current_time is None
        assert walker.previous_vertex is None
        assert walker.num_edges == 0

    def test_advance(self):
        walker = Walker(5)
        walker.advance(3, 1.5)
        walker.advance(8, 2.5)
        assert walker.current_vertex == 8
        assert walker.current_time == 2.5
        assert walker.previous_vertex == 3
        assert walker.num_edges == 2

    def test_finish_snapshot(self):
        walker = Walker(1)
        walker.advance(2, 1.0)
        path = walker.finish()
        walker.advance(3, 2.0)
        assert len(path) == 2  # snapshot unaffected by later advances
        assert path.vertices == [1, 2]
        assert path.times == [None, 1.0]
        assert path.num_edges == 1

    def test_walkpath_len(self):
        path = WalkPath(hops=[(0, None)])
        assert len(path) == 1
        assert path.num_edges == 0


class TestCustomParameter:
    """Table 2's Dynamic_parameter as a user extension point."""

    def test_validation(self):
        from repro.walks.spec import CustomParameter

        with pytest.raises(TypeError):
            CustomParameter(fn="not callable")
        with pytest.raises(ValueError):
            CustomParameter(fn=lambda g, p, c: 1.0, beta_max=0.0)

    def test_first_hop_accepts(self):
        from repro.walks.spec import CustomParameter

        beta = CustomParameter(fn=lambda g, p, c: 0.1, beta_max=2.0)
        assert beta(None, None, 3) == 2.0
        assert beta(None, 0, 3) == 0.1

    def test_custom_bias_changes_walk_statistics(self):
        """A custom β that forbids returning to the previous vertex."""
        from repro.engines import TeaEngine, Workload
        from repro.walks.spec import CustomParameter, WalkSpec
        from repro.core.weights import WeightModel

        graph = TemporalGraph.from_edges(
            [(0, 1, 1.0), (1, 0, 2.0), (1, 2, 2.0), (0, 3, 3.0), (2, 4, 5.0)]
        )
        no_return = CustomParameter(
            fn=lambda g, prev, cand: 1e-9 if cand == prev else 1.0,
            beta_max=1.0,
            name="no-return",
        )
        spec = WalkSpec("no-return-walk", WeightModel("uniform"),
                        dynamic_parameter=no_return)
        engine = TeaEngine(graph, spec)
        result = engine.run(
            Workload(walks_per_vertex=300, max_length=3, start_vertices=[0]),
            seed=0,
        )
        # 0 -> 1 then the only non-return candidate is 2: returns to 0
        # are (nearly) never accepted.
        returns = sum(
            1 for p in result.paths
            if p.num_edges >= 2 and p.vertices[1] == 1 and p.vertices[2] == 0
        )
        assert returns == 0
        assert "no-return" in spec.describe()
