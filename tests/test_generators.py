"""Synthetic generators: determinism, shape, and degree structure."""

import numpy as np
import pytest

from repro.graph.generators import (
    temporal_bipartite,
    temporal_erdos_renyi,
    temporal_powerlaw,
    temporal_star,
    toy_commute_graph,
)
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validate import check_graph


class TestToyCommute:
    def test_matches_paper_figure1(self):
        graph = TemporalGraph.from_stream(toy_commute_graph())
        # Vertex 7 has exactly the out-edges used in every worked example.
        nbrs, times = graph.neighbors(7)
        assert dict(zip(nbrs.tolist(), times.tolist())) == {
            i: float(i + 1) for i in range(7)
        }

    def test_valid_structure(self):
        graph = TemporalGraph.from_stream(toy_commute_graph())
        assert check_graph(graph) == []


class TestErdosRenyi:
    def test_deterministic(self):
        a = temporal_erdos_renyi(20, 100, seed=5)
        b = temporal_erdos_renyi(20, 100, seed=5)
        assert a == b

    def test_seed_changes_output(self):
        a = temporal_erdos_renyi(20, 100, seed=5)
        b = temporal_erdos_renyi(20, 100, seed=6)
        assert a != b

    def test_shape(self):
        stream = temporal_erdos_renyi(20, 100, time_horizon=50.0, seed=0)
        assert len(stream) == 100
        assert stream.num_vertices() <= 20
        assert stream.time.max() <= 50.0
        assert stream.time.min() >= 0.0


class TestPowerlaw:
    def test_degree_skew_grows_with_alpha(self):
        flat = temporal_powerlaw(200, 5000, alpha=0.2, seed=1)
        skewed = temporal_powerlaw(200, 5000, alpha=1.4, seed=1)
        d_flat = TemporalGraph.from_stream(flat).max_degree()
        d_skew = TemporalGraph.from_stream(skewed).max_degree()
        assert d_skew > d_flat

    def test_integer_times(self):
        stream = temporal_powerlaw(20, 200, time_horizon=100, seed=2, integer_times=True)
        assert np.all(stream.time == np.floor(stream.time))

    def test_mean_degree(self):
        graph = TemporalGraph.from_stream(temporal_powerlaw(100, 3000, seed=3))
        assert graph.mean_degree() == pytest.approx(30.0)

    def test_deterministic(self):
        assert temporal_powerlaw(50, 500, seed=9) == temporal_powerlaw(50, 500, seed=9)


class TestStar:
    def test_single_hub(self):
        stream = temporal_star(degree=64, seed=0)
        graph = TemporalGraph.from_stream(stream)
        assert graph.out_degree(0) == 64
        assert graph.max_degree() == 64

    def test_times_sorted_distinct_targets(self):
        stream = temporal_star(degree=16, seed=1)
        assert stream.is_time_sorted()
        assert len(set(stream.dst.tolist())) == 16

    def test_hub_offset(self):
        stream = temporal_star(degree=8, seed=1, hub=100)
        assert set(stream.src.tolist()) == {100}


class TestBipartite:
    def test_partition_respected(self):
        stream = temporal_bipartite(10, 5, 200, seed=4)
        graph = TemporalGraph.from_stream(stream)
        # Edges alternate sides: user->item and item->user only.
        src = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
        left = src < 10
        assert np.all(graph.nbr[left] >= 10)
        assert np.all(graph.nbr[~left] < 10)

    def test_symmetric_counts(self):
        stream = temporal_bipartite(10, 5, 200, seed=4)
        assert len(stream) == 400  # both directions materialised


class TestBursty:
    def test_times_cluster(self):
        from repro.graph.generators import temporal_bursty

        stream = temporal_bursty(50, 3000, num_bursts=5, burst_width=1.0,
                                 time_horizon=1000.0, seed=7)
        assert len(stream) == 3000
        # With 5 tight bursts, most inter-edge gaps are tiny and a few are
        # huge: the gap distribution is far more skewed than uniform.
        gaps = np.diff(np.sort(stream.time))
        assert np.median(gaps) < 0.1
        assert gaps.max() > 20.0

    def test_deterministic(self):
        from repro.graph.generators import temporal_bursty

        a = temporal_bursty(20, 200, seed=3)
        b = temporal_bursty(20, 200, seed=3)
        assert a == b

    def test_times_within_horizon(self):
        from repro.graph.generators import temporal_bursty

        stream = temporal_bursty(20, 500, time_horizon=100.0, seed=1)
        assert stream.time.min() >= 0.0
        assert stream.time.max() <= 100.0

    def test_time_structure_moves_rejection_not_tea(self):
        """Bursty timestamps flatten within-candidate exponential skew
        (whole bursts share near-max weight), collapsing rejection's
        expected trials, while TEA's hybrid cost is insensitive to time
        structure — measured via the analytic cost model."""
        from repro.core.weights import WeightModel
        from repro.graph.generators import temporal_bursty
        from repro.graph.stats import predict_sampling_costs
        from repro.graph.temporal_graph import TemporalGraph

        bursty = TemporalGraph.from_stream(
            temporal_bursty(100, 8000, num_bursts=8, burst_width=0.5, seed=2)
        )
        uniform = TemporalGraph.from_stream(
            temporal_powerlaw(100, 8000, alpha=1.0, seed=2)
        )
        model = WeightModel("exponential", scale=6.0)
        pb = predict_sampling_costs(bursty, model)
        pu = predict_sampling_costs(uniform, model)
        assert pb.rejection < pu.rejection / 2  # bursts flatten the skew
        # TEA's cost is time-structure-insensitive.
        assert abs(pb.tea_hybrid - pu.tea_hybrid) < 1.0
