"""Temporal analytics atop TEA: PageRank, SimRank, meta-path walks."""

import numpy as np
import pytest

from repro.analytics import (
    MetapathWalker,
    temporal_metapath_walks,
    temporal_pagerank,
    temporal_simrank,
)
from repro.analytics.simrank import temporal_simrank_matrix
from repro.engines.tea import TeaEngine
from repro.exceptions import GraphFormatError
from repro.graph.generators import temporal_bipartite, temporal_powerlaw
from repro.graph.temporal_graph import TemporalGraph
from repro.walks.apps import exponential_walk, temporal_node2vec, unbiased_walk


@pytest.fixture(scope="module")
def graph():
    return TemporalGraph.from_stream(
        temporal_powerlaw(60, 2000, alpha=0.9, time_horizon=150.0, seed=3)
    )


class TestTemporalPagerank:
    def test_distribution_properties(self, graph):
        scores = temporal_pagerank(graph, num_walks=800, seed=0)
        assert scores.shape == (graph.num_vertices,)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_personalized_mass_near_source(self, graph):
        source = int(np.argmax(graph.degrees()))
        scores = temporal_pagerank(graph, sources=[source], num_walks=800, seed=1)
        assert scores[source] > 1.0 / graph.num_vertices

    def test_deterministic_given_seed(self, graph):
        a = temporal_pagerank(graph, num_walks=300, seed=7)
        b = temporal_pagerank(graph, num_walks=300, seed=7)
        assert np.array_equal(a, b)

    def test_respects_temporal_reachability(self):
        # 0 -> 1 at t=5, 1 -> 2 at t=3 (< 5): 2 unreachable from 0.
        g = TemporalGraph.from_edges([(0, 1, 5.0), (1, 2, 3.0)])
        scores = temporal_pagerank(g, sources=[0], num_walks=500, seed=0)
        assert scores[2] == 0.0
        assert scores[1] > 0.0

    def test_engine_reuse(self, graph):
        spec = exponential_walk()
        engine = TeaEngine(graph, spec)
        a = temporal_pagerank(graph, spec=spec, engine=engine, num_walks=200, seed=2)
        assert a.sum() == pytest.approx(1.0)

    def test_parameter_validation(self, graph):
        with pytest.raises(ValueError):
            temporal_pagerank(graph, alpha=0.0)
        with pytest.raises(ValueError):
            temporal_pagerank(graph, num_walks=0)
        with pytest.raises(ValueError):
            temporal_pagerank(graph, sources=[])
        with pytest.raises(ValueError):
            temporal_pagerank(graph, spec=temporal_node2vec())


class TestTemporalSimrank:
    def test_identity(self, graph):
        assert temporal_simrank(graph, 3, 3) == 1.0

    def test_range(self, graph):
        hubs = np.argsort(graph.degrees())[::-1][:2]
        s = temporal_simrank(graph, int(hubs[0]), int(hubs[1]), num_pairs=200, seed=0)
        assert 0.0 <= s <= 1.0

    def test_disconnected_pair_zero(self):
        g = TemporalGraph.from_edges(
            [(0, 1, 1.0), (2, 3, 1.0)], num_vertices=4
        )
        assert temporal_simrank(g, 0, 2, num_pairs=100, seed=0) == 0.0

    def test_converging_pair_positive(self):
        # Both 0 and 1 always hop to 2 — they meet after one step.
        g = TemporalGraph.from_edges([(0, 2, 1.0), (1, 2, 1.0), (2, 3, 5.0)])
        s = temporal_simrank(g, 0, 1, decay=0.5, num_pairs=200, seed=0)
        assert s == pytest.approx(0.5)  # meet at k=1 with certainty

    def test_matrix_symmetric(self, graph):
        vs = np.argsort(graph.degrees())[::-1][:3]
        m = temporal_simrank_matrix(graph, vs, num_pairs=50, seed=0)
        assert np.allclose(m, m.T)
        assert np.all(np.diag(m) == 1.0)

    def test_decay_validation(self, graph):
        with pytest.raises(ValueError):
            temporal_simrank(graph, 0, 1, decay=1.5)


class TestMetapath:
    @pytest.fixture(scope="class")
    def bipartite(self):
        stream = temporal_bipartite(12, 6, 600, seed=4)
        graph = TemporalGraph.from_stream(stream)
        types = np.zeros(graph.num_vertices, dtype=int)
        types[12:] = 1
        return graph, types

    def test_walks_alternate_types(self, bipartite):
        graph, types = bipartite
        paths = temporal_metapath_walks(
            graph, types, [0, 1, 0], starts=range(8), num_cycles=3,
            spec=unbiased_walk(), seed=0,
        )
        assert len(paths) == 8
        for path in paths:
            for (v1, _), (v2, _) in zip(path.hops, path.hops[1:]):
                assert types[v1] != types[v2]

    def test_walks_are_temporal(self, bipartite):
        graph, types = bipartite
        paths = temporal_metapath_walks(
            graph, types, [0, 1, 0], starts=range(8), num_cycles=3,
            spec=unbiased_walk(), seed=1,
        )
        for path in paths:
            times = [t for _, t in path.hops if t is not None]
            assert times == sorted(times)
            assert len(set(times)) == len(times)

    def test_start_type_checked(self, bipartite):
        graph, types = bipartite
        walker = MetapathWalker(graph, types, [0, 1, 0], spec=unbiased_walk())
        with pytest.raises(ValueError, match="type"):
            walker.walk(12, 1, np.random.default_rng(0))  # an item vertex

    def test_noncyclic_pattern_rejected(self, bipartite):
        graph, types = bipartite
        with pytest.raises(ValueError, match="cyclic"):
            MetapathWalker(graph, types, [0, 1], spec=unbiased_walk())

    def test_types_length_checked(self, bipartite):
        graph, _ = bipartite
        with pytest.raises(GraphFormatError):
            MetapathWalker(graph, [0, 1], [0, 1, 0])

    def test_fallback_when_type_rare(self):
        # Vertex 0 has 63 edges to type-1 vertices and 1 to a type-0
        # vertex; the rejection loop will usually need the exact fallback.
        edges = [(0, i + 1, float(i)) for i in range(63)] + [(0, 100, 63.0),
                                                             (100, 0, 64.0)]
        graph = TemporalGraph.from_edges(edges)
        types = np.ones(graph.num_vertices, dtype=int)
        types[0] = 0
        types[100] = 0
        walker = MetapathWalker(graph, types, [0, 0, 0], spec=unbiased_walk())
        path = walker.walk(0, 1, np.random.default_rng(0))
        # The only type-0 successor is vertex 100.
        assert path.vertices[:2] == [0, 100]

    def test_dead_end_terminates(self, bipartite):
        graph, types = bipartite
        walker = MetapathWalker(graph, types, [0, 1, 0], spec=unbiased_walk())
        path = walker.walk(0, num_cycles=50, rng=np.random.default_rng(3))
        assert path.num_edges <= 100  # ended by temporal exhaustion
