"""Concurrency stress: conservation, per-request run ids, bounded join.

Hammers a live daemon from >= 8 client threads (including a phase with
the batcher paused so the admission bound actually rejects), then
asserts the invariants the serving layer guarantees under load:

* telemetry conservation — ``serve.received == served + rejected +
  failed`` exactly, even with racing submits;
* one event-log run id per request, all unique, with a matching
  ``serve.response`` for every ``serve.request``;
* shutdown joins every thread within its bound (no deadlock).
"""

import json
import threading
import time

import pytest

from repro.serve import ServeClient, WalkService
from repro.telemetry import events as telemetry_events
from repro.telemetry.events import EventLog

CLIENT_THREADS = 8
REQUESTS_PER_THREAD = 6


@pytest.fixture()
def event_log():
    log = EventLog()
    previous = telemetry_events.install(log)
    yield log
    telemetry_events.install(previous)


def test_stress_conservation_and_run_ids(small_graph, event_log):
    statuses = []
    lock = threading.Lock()
    with WalkService(
        small_graph, engine="tea-batch", queue_depth=6, batch_window_ms=1.0
    ) as service:
        client = ServeClient(port=service.port)

        def _hammer(worker):
            for i in range(REQUESTS_PER_THREAD):
                endpoint = "/recommend" if (worker + i) % 3 == 0 else "/walk"
                status, payload = client.post(
                    endpoint,
                    {
                        "starts": [1 + (worker + i) % 20],
                        "walks_per_vertex": 2,
                        "seed": worker * 1000 + i,
                        "max_length": 6,
                    },
                )
                with lock:
                    statuses.append((status, payload.get("run_id")))

        threads = [
            threading.Thread(target=_hammer, args=(w,))
            for w in range(CLIENT_THREADS)
        ]

        # Phase 1: pause the batcher so the queue fills and rejects.
        service.batcher.pause()
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10.0
        while service.queue.depth() < service.queue.max_depth:
            assert time.monotonic() < deadline, "queue never filled"
            time.sleep(0.002)
        time.sleep(0.1)
        # Phase 2: drain everything.
        service.batcher.resume()
        for t in threads:
            t.join(timeout=60.0)
            assert not t.is_alive(), "client thread wedged"

        total = CLIENT_THREADS * REQUESTS_PER_THREAD
        assert len(statuses) == total
        ok = sum(1 for s, _ in statuses if s == 200)
        rejected = sum(1 for s, _ in statuses if s == 429)
        failed = sum(1 for s, _ in statuses if s not in (200, 429))
        assert rejected >= 1, "admission control never rejected"
        assert failed == 0, statuses

        # Conservation, exactly.
        counters = client.stats()["counters"]
        assert counters["received"] == total
        assert counters["received"] == (
            counters["served"] + counters["rejected"] + counters["failed"]
        )
        assert counters["served"] == ok
        assert counters["rejected"] == rejected
        assert counters["failed"] == 0

        # Run ids: one per request, unique, request/response paired.
        served_ids = [rid for s, rid in statuses if s == 200]
        assert len(set(served_ids)) == len(served_ids)
        requests = [e for e in event_log.events if e["kind"] == "serve.request"]
        responses = [e for e in event_log.events if e["kind"] == "serve.response"]
        assert len(requests) == total
        request_ids = [e["run_id"] for e in requests]
        assert len(set(request_ids)) == total, "run ids not unique per request"
        response_by_id = {e["run_id"]: e["status"] for e in responses}
        assert set(request_ids) <= set(response_by_id), "unanswered request"
        assert set(served_ids) <= set(request_ids)
        for rid in served_ids:
            assert response_by_id[rid] == 200

        # Bounded, clean shutdown while still inside the context.
        t0 = time.monotonic()
        assert service.close(timeout=10.0) is True
        assert time.monotonic() - t0 < 10.0


def test_shutdown_drains_parked_requests(small_graph):
    """Requests admitted before shutdown still get answers: stop()
    drains the queue rather than abandoning waiters."""
    with WalkService(small_graph, engine="tea-batch", queue_depth=8) as service:
        client = ServeClient(port=service.port)
        service.batcher.pause()
        results = []

        def _go(i):
            results.append(
                client.post("/walk", {"starts": [i + 1], "seed": i, "max_length": 4})
            )

        threads = [threading.Thread(target=_go, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10.0
        while service.queue.depth() < 4:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        # stop() un-pauses, closes admission, and drains before joining.
        assert service.batcher.stop(timeout=10.0) is True
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive()
        assert [s for s, _ in results] == [200, 200, 200, 200]


def test_stress_events_are_serialisable(small_graph, event_log, tmp_path):
    """The serving event stream round-trips through JSONL."""
    with WalkService(small_graph, engine="tea-batch") as service:
        client = ServeClient(port=service.port)
        for i in range(3):
            client.walk(starts=[1 + i], seed=i, max_length=4)
    path = tmp_path / "events.jsonl"
    count = event_log.write(path)
    assert count >= 3 * 2  # request + response per query, at least
    parsed = EventLog.read(path)
    kinds = {e["kind"] for e in parsed}
    assert {"serve.start", "serve.request", "serve.batch",
            "serve.response", "serve.stop"} <= kinds
    for event in parsed:
        json.dumps(event)  # every field JSON-clean
