"""Command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_dataset_info(self, capsys):
        assert main(["info", "--dataset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "TemporalGraph" in out
        assert "degree" in out


class TestGenerate:
    def test_generate_text(self, tmp_path, capsys):
        out_file = tmp_path / "edges.txt"
        assert main(["generate", "--dataset", "tiny", str(out_file)]) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_binary_roundtrip(self, tmp_path):
        out_file = tmp_path / "edges.tegb"
        main(["generate", "--dataset", "tiny", str(out_file)])
        assert main(["info", "--input", str(out_file)]) == 0


class TestWalk:
    def test_walk_summary(self, capsys):
        rc = main([
            "walk", "--dataset", "tiny", "--app", "exponential",
            "--engine", "tea", "--length", "10", "--max-walks", "20",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "steps:" in out
        assert "edges_per_step:" in out

    def test_walk_show_paths(self, capsys):
        main([
            "walk", "--dataset", "tiny", "--app", "unbiased",
            "--length", "5", "--max-walks", "5", "--show-paths", "3",
        ])
        out = capsys.readouterr().out
        assert "->" in out or "steps: 0" in out

    def test_walk_from_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1.0\n1 2 2.0\n")
        rc = main([
            "walk", "--input", str(path), "--app", "unbiased",
            "--engine", "tea", "--length", "5",
        ])
        assert rc == 0


class TestCompare:
    def test_compare_table(self, capsys):
        rc = main([
            "compare", "--dataset", "tiny", "--app", "linear",
            "--engines", "tea", "ctdne", "--max-walks", "10", "--length", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tea" in out and "ctdne" in out

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--engines", "warpdrive"])


class TestStats:
    def test_stats_output(self, capsys):
        assert main(["stats", "--dataset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "mean_degree" in out
        assert "dead_end_fraction" in out

    def test_stats_with_cost_prediction(self, capsys):
        assert main(["stats", "--dataset", "tiny", "--predict-costs"]) == 0
        out = capsys.readouterr().out
        assert "tea_hybrid" in out
        assert "rejection" in out


class TestPagerank:
    def test_global(self, capsys):
        assert main(["pagerank", "--dataset", "tiny", "--num-walks", "200",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "PageRank" in out
        assert out.count("vertex") == 3

    def test_personalized(self, capsys):
        assert main(["pagerank", "--dataset", "tiny", "--sources", "0", "1",
                     "--num-walks", "100", "--top", "2"]) == 0
        assert "personalized" in capsys.readouterr().out


class TestCorpus:
    def test_generate_and_validate(self, tmp_path, capsys):
        corpus = tmp_path / "c.twalks"
        rc = main(["corpus", "--dataset", "tiny", str(corpus),
                   "--app", "unbiased", "--length", "5", "--max-walks", "20"])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        rc = main(["validate-corpus", "--dataset", "tiny", str(corpus)])
        assert rc == 0
        assert "0 problems" in capsys.readouterr().out

    def test_validate_rejects_foreign_corpus(self, tmp_path, capsys):
        corpus = tmp_path / "bad.txt"
        corpus.write_text("0 1@9999.0\n")
        rc = main(["validate-corpus", "--dataset", "tiny", str(corpus)])
        assert rc == 1
        assert "1 problems" in capsys.readouterr().out


class TestLinkPredict:
    def test_runs_and_prints_auc(self, capsys):
        rc = main([
            "link-predict", "--dataset", "tiny", "--apps", "unbiased",
            "--dim", "8", "--epochs", "1", "--walks-per-vertex", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "AUC" in out and "unbiased" in out


class TestBenchWrapper:
    def test_targets_exist(self):
        from pathlib import Path

        from repro.cli import BENCH_TARGETS

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        for fname in BENCH_TARGETS.values():
            assert (bench_dir / fname).exists(), fname

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "figure-of-doom"])
