"""Adversarial graph shapes: degenerate structures must stay correct."""

import numpy as np
import pytest

from repro.core.builder import build_hpat, build_pat
from repro.core.weights import WeightModel
from repro.engines import BatchTeaEngine, TeaEngine, Workload
from repro.graph.edge_stream import EdgeStream
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validate import is_temporal_path
from repro.rng import make_rng
from repro.walks.apps import exponential_walk, unbiased_walk
from tests.conftest import chisquare_ok


class TestAllEqualTimestamps:
    """Every edge at the same instant: no walk may take two steps."""

    @pytest.fixture
    def graph(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 20, 300)
        dst = rng.integers(0, 20, 300)
        return TemporalGraph.from_stream(
            EdgeStream(src, dst, np.full(300, 7.0))
        )

    def test_walks_have_at_most_one_edge(self, graph):
        for cls in (TeaEngine, BatchTeaEngine):
            result = cls(graph, unbiased_walk()).run(
                Workload(max_length=10), seed=0
            )
            assert all(p.num_edges <= 1 for p in result.paths)

    def test_candidate_counts_zero_after_arrival(self, graph):
        sizes = graph.candidate_counts_per_edge()
        assert np.all(sizes == 0)

    def test_structures_build(self, graph):
        weights = WeightModel("exponential", scale=1.0).compute(graph)
        hpat = build_hpat(graph, weights)
        v = int(np.argmax(graph.degrees()))
        d = graph.out_degree(v)
        rng = make_rng(0)
        # Full-degree sampling (first hop) is uniform: equal times ⇒
        # equal exponential weights.
        counts = np.zeros(d)
        for _ in range(8000):
            counts[hpat.sample(v, d, rng)] += 1
        assert chisquare_ok(counts, np.full(d, 1 / d))


class TestSingleGiantHub:
    def test_power_of_two_degrees(self):
        """Degrees exactly at powers of two exercise layout boundaries."""
        for d in (1, 2, 4, 255, 256, 257):
            graph = TemporalGraph.from_edges(
                [(0, i % 7 + 1, float(i)) for i in range(d)], num_vertices=8
            )
            weights = WeightModel("linear_rank").compute(graph)
            hpat = build_hpat(graph, weights)
            pat = build_pat(graph, weights)
            rng = make_rng(d)
            for s in {1, d // 2, d - 1, d}:
                if s < 1:
                    continue
                for index in (hpat, pat):
                    idx = index.sample(0, s, rng)
                    assert 0 <= idx < s, (d, s)

    def test_hub_walks_stay_valid(self):
        edges = [(0, 1, float(i)) for i in range(500)]
        edges += [(1, 0, float(i) + 0.5) for i in range(500)]
        graph = TemporalGraph.from_edges(edges)
        result = TeaEngine(graph, exponential_walk(scale=100.0)).run(
            Workload(max_length=50, walks_per_vertex=5), seed=1
        )
        for path in result.paths:
            assert is_temporal_path(graph, path.hops)


class TestDuplicateEdges:
    """Repeated (u, v) pairs at many times are first-class citizens."""

    def test_mass_splits_across_duplicates(self):
        # 0 -> 1 three times, 0 -> 2 once; uniform weights.
        graph = TemporalGraph.from_edges(
            [(0, 1, 1.0), (0, 1, 2.0), (0, 1, 3.0), (0, 2, 4.0)]
        )
        engine = TeaEngine(graph, unbiased_walk())
        result = engine.run(
            Workload(walks_per_vertex=8000, max_length=1, start_vertices=[0]),
            seed=0,
        )
        firsts = [p.vertices[1] for p in result.paths if p.num_edges]
        share_1 = sum(1 for v in firsts if v == 1) / len(firsts)
        assert share_1 == pytest.approx(0.75, abs=0.02)


class TestLongChain:
    def test_walk_traverses_entire_chain(self):
        n = 300
        graph = TemporalGraph.from_edges(
            [(i, i + 1, float(i)) for i in range(n)]
        )
        for cls in (TeaEngine, BatchTeaEngine):
            result = cls(graph, unbiased_walk()).run(
                Workload(max_length=n + 10, start_vertices=[0]), seed=0
            )
            assert result.paths[0].num_edges == n
            assert result.paths[0].vertices[-1] == n

    def test_chain_candidate_sizes(self):
        graph = TemporalGraph.from_edges(
            [(i, i + 1, float(i)) for i in range(50)]
        )
        sizes = graph.candidate_counts_per_edge()
        # Arriving at vertex i+1 at time i, its single out-edge at time
        # i+1 is a candidate — except at the chain's end.
        assert np.all(np.sort(sizes)[::-1][:-1] == 1)


class TestManyIsolatedVertices:
    def test_sparse_activity_in_large_id_space(self):
        graph = TemporalGraph.from_edges(
            [(10_000, 99_999, 1.0), (99_999, 5, 2.0)], num_vertices=100_000
        )
        result = TeaEngine(graph, unbiased_walk()).run(
            Workload(start_vertices=[10_000], max_length=5), seed=0
        )
        assert result.paths[0].vertices == [10_000, 99_999, 5]
        # Index memory stays proportional to edges, not the id space.
        assert graph.num_edges == 2
