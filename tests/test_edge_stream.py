"""EdgeStream: construction, ordering, intervals, batching."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph.edge_stream import EdgeStream, TemporalEdge


class TestConstruction:
    def test_from_edges_roundtrip(self):
        stream = EdgeStream.from_edges([(0, 1, 5.0), (1, 2, 3.0), (2, 0, 4.0)])
        assert len(stream) == 3
        assert stream.is_time_sorted()
        assert [e.as_tuple() for e in stream] == [(1, 2, 3.0), (2, 0, 4.0), (0, 1, 5.0)]

    def test_empty(self):
        stream = EdgeStream.empty()
        assert len(stream) == 0
        assert stream.num_vertices() == 0

    def test_sorts_by_time_stable(self):
        # Equal times keep input order (stable).
        stream = EdgeStream([3, 1, 2], [0, 0, 0], [1.0, 1.0, 1.0])
        assert list(stream.src) == [3, 1, 2]

    def test_unsorted_input_is_sorted(self):
        stream = EdgeStream([0, 1], [1, 0], [9.0, 2.0])
        assert list(stream.time) == [2.0, 9.0]

    def test_sort_false_preserves_order(self):
        stream = EdgeStream([0, 1], [1, 0], [9.0, 2.0], sort=False)
        assert list(stream.time) == [9.0, 2.0]
        assert not stream.is_time_sorted()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphFormatError):
            EdgeStream([0, 1], [1], [1.0, 2.0])

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphFormatError):
            EdgeStream([-1], [0], [1.0])

    def test_nonfinite_time_rejected(self):
        with pytest.raises(GraphFormatError):
            EdgeStream([0], [1], [float("nan")])
        with pytest.raises(GraphFormatError):
            EdgeStream([0], [1], [float("inf")])

    def test_arrays_are_readonly(self):
        stream = EdgeStream([0], [1], [1.0])
        with pytest.raises(ValueError):
            stream.src[0] = 5


class TestQueries:
    def test_num_vertices_max_id(self):
        stream = EdgeStream([0, 7], [3, 2], [1.0, 2.0])
        assert stream.num_vertices() == 8

    def test_time_range(self):
        stream = EdgeStream([0, 0], [1, 1], [2.0, 10.0])
        assert stream.time_range() == (2.0, 10.0)

    def test_time_range_empty_raises(self):
        with pytest.raises(GraphFormatError):
            EdgeStream.empty().time_range()

    def test_getitem_scalar_and_slice(self):
        stream = EdgeStream.from_edges([(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        assert stream[1] == TemporalEdge(1, 2, 2.0)
        sub = stream[1:]
        assert isinstance(sub, EdgeStream)
        assert len(sub) == 2

    def test_equality(self):
        a = EdgeStream([0], [1], [1.0])
        b = EdgeStream([0], [1], [1.0])
        c = EdgeStream([0], [1], [2.0])
        assert a == b
        assert a != c


class TestInterval:
    """Edges_interval: the paper's temporal subgraph extraction API."""

    def test_interval_inclusive(self):
        stream = EdgeStream.from_edges([(0, 1, t) for t in range(10)])
        sub = stream.interval(3, 6)
        assert list(sub.time) == [3.0, 4.0, 5.0, 6.0]

    def test_interval_empty_window(self):
        stream = EdgeStream.from_edges([(0, 1, t) for t in range(10)])
        assert len(stream.interval(100, 200)) == 0

    def test_interval_full_window(self):
        stream = EdgeStream.from_edges([(0, 1, t) for t in range(10)])
        assert stream.interval(-1, 100) == stream

    def test_concat_resorts(self):
        a = EdgeStream.from_edges([(0, 1, 5.0)])
        b = EdgeStream.from_edges([(1, 2, 1.0)])
        merged = a.concat(b)
        assert list(merged.time) == [1.0, 5.0]


class TestBatches:
    def test_batches_cover_stream(self):
        stream = EdgeStream.from_edges([(0, 1, t) for t in range(10)])
        batches = list(stream.batches(3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        assert np.concatenate([b.time for b in batches]).tolist() == list(map(float, range(10)))

    def test_batches_are_time_ordered(self):
        stream = EdgeStream.from_edges([(0, 1, t) for t in range(10)])
        last = -1.0
        for batch in stream.batches(4):
            assert batch.time[0] >= last
            last = batch.time[-1]

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(EdgeStream.empty().batches(0))


class TestFromArrays:
    def test_canonical_arrays_adopted_without_copy(self):
        src = np.array([0, 1, 2], dtype=np.int64)
        dst = np.array([1, 2, 0], dtype=np.int64)
        time = np.array([1.0, 2.0, 3.0], dtype=np.float64)
        stream = EdgeStream.from_arrays(src, dst, time, require_sorted=True)
        assert stream.src is src or np.shares_memory(stream.src, src)
        assert list(stream.time) == [1.0, 2.0, 3.0]

    def test_dtype_conversion(self):
        stream = EdgeStream.from_arrays(
            np.array([0, 1], dtype=np.int32),
            np.array([1, 0], dtype=np.int32),
            np.array([1, 2], dtype=np.int32),
        )
        assert stream.src.dtype == np.int64
        assert stream.time.dtype == np.float64

    def test_require_sorted_rejects_unsorted(self):
        with pytest.raises(GraphFormatError):
            EdgeStream.from_arrays([0, 1], [1, 0], [5.0, 2.0],
                                   require_sorted=True)

    def test_unsorted_without_flag_is_sorted(self):
        stream = EdgeStream.from_arrays([0, 1], [1, 0], [5.0, 2.0])
        assert list(stream.time) == [2.0, 5.0]
        assert list(stream.src) == [1, 0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphFormatError):
            EdgeStream.from_arrays([0, 1], [1], [1.0, 2.0])

    def test_equal_times_accepted_as_sorted(self):
        stream = EdgeStream.from_arrays([0, 1], [1, 0], [2.0, 2.0],
                                        require_sorted=True)
        assert len(stream) == 2
