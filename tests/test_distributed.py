"""Distributed TEA: partitioning, BSP execution, equivalence, accounting."""

import numpy as np
import pytest

from repro.distributed import (
    DistributedTeaEngine,
    degree_balanced_partition,
    hash_partition,
    range_partition,
)
from repro.distributed.partition import edge_cut, partition_load
from repro.engines import TeaEngine, Workload
from repro.graph.validate import is_temporal_path
from repro.rng import make_rng
from repro.sampling.counters import CostCounters
from repro.walks.apps import exponential_walk, temporal_node2vec, unbiased_walk
from tests.conftest import chisquare_ok

PARTITIONERS = [hash_partition, range_partition, degree_balanced_partition]


class TestPartitioners:
    @pytest.mark.parametrize("fn", PARTITIONERS)
    def test_every_vertex_assigned(self, small_graph, fn):
        owners = fn(small_graph, 4)
        assert owners.shape == (small_graph.num_vertices,)
        assert owners.min() >= 0 and owners.max() < 4

    @pytest.mark.parametrize("fn", PARTITIONERS)
    def test_single_worker(self, small_graph, fn):
        assert np.all(fn(small_graph, 1) == 0)

    @pytest.mark.parametrize("fn", PARTITIONERS)
    def test_bad_worker_count(self, small_graph, fn):
        with pytest.raises(ValueError):
            fn(small_graph, 0)

    def test_degree_balanced_beats_hash_on_skew(self, medium_graph):
        """LPT packing balances edge load better than hashing on power law."""
        for workers in (2, 4, 8):
            hash_load = partition_load(
                medium_graph, hash_partition(medium_graph, workers), workers
            )
            lpt_load = partition_load(
                medium_graph, degree_balanced_partition(medium_graph, workers), workers
            )
            assert lpt_load.max() <= hash_load.max()

    def test_range_partition_contiguous(self, small_graph):
        owners = range_partition(small_graph, 3)
        assert np.all(np.diff(owners) >= 0)  # non-decreasing = contiguous

    def test_edge_cut_bounds(self, small_graph):
        owners = hash_partition(small_graph, 4)
        cut = edge_cut(small_graph, owners)
        assert 0 <= cut <= small_graph.num_edges
        assert edge_cut(small_graph, np.zeros(small_graph.num_vertices, dtype=int)) == 0


class TestDistributedRun:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("spec_fn", [unbiased_walk, exponential_walk,
                                         temporal_node2vec],
                             ids=["unbiased", "exponential", "node2vec"])
    def test_paths_are_temporal(self, small_graph, workers, spec_fn):
        engine = DistributedTeaEngine(small_graph, spec_fn(), num_workers=workers)
        paths, stats, counters, _ = engine.run(
            Workload(max_length=10, max_walks=30), seed=1
        )
        assert len(paths) == 30
        for path in paths:
            assert is_temporal_path(engine.graph, path.hops)
        assert stats.total_steps == counters.steps

    def test_walks_complete_regardless_of_partitioner(self, small_graph):
        for name in ("hash", "range", "degree"):
            engine = DistributedTeaEngine(
                small_graph, unbiased_walk(), num_workers=3, partitioner=name
            )
            paths, stats, _, _ = engine.run(Workload(max_length=5, max_walks=20), seed=0)
            assert len(paths) == 20
            assert stats.supersteps >= 1

    def test_custom_partitioner_callable(self, small_graph):
        def odd_even(graph, workers):
            return np.arange(graph.num_vertices) % 2 % workers

        engine = DistributedTeaEngine(
            small_graph, unbiased_walk(), num_workers=2, partitioner=odd_even
        )
        paths, _, _, _ = engine.run(Workload(max_length=3, max_walks=10), seed=0)
        assert len(paths) == 10

    def test_unknown_partitioner(self, small_graph):
        with pytest.raises(ValueError, match="partitioner"):
            DistributedTeaEngine(small_graph, unbiased_walk(), partitioner="magic")

    def test_bad_worker_count(self, small_graph):
        with pytest.raises(ValueError):
            DistributedTeaEngine(small_graph, unbiased_walk(), num_workers=0)

    def test_single_worker_no_messages(self, small_graph):
        engine = DistributedTeaEngine(small_graph, unbiased_walk(), num_workers=1)
        _, stats, _, _ = engine.run(Workload(max_length=8, max_walks=25), seed=2)
        assert stats.messages == 0
        assert stats.migration_rate == 0.0

    def test_messages_counted_on_crossings(self, small_graph):
        engine = DistributedTeaEngine(small_graph, unbiased_walk(), num_workers=4)
        _, stats, _, _ = engine.run(Workload(max_length=8, max_walks=50), seed=2)
        # With 4 hash shards most hops cross partitions.
        assert stats.messages > 0
        assert 0.0 < stats.migration_rate <= 1.0

    def test_makespan_decreases_with_workers(self, medium_graph):
        """The point of distribution: modeled makespan shrinks with W."""
        wl = Workload(max_length=20, max_walks=200)
        makespans = {}
        for workers in (1, 2, 4, 8):
            engine = DistributedTeaEngine(
                medium_graph, exponential_walk(), num_workers=workers,
                partitioner="degree",
            )
            _, stats, _, _ = engine.run(wl, seed=3)
            makespans[workers] = stats.modeled_makespan
        assert makespans[8] < makespans[4] < makespans[1]

    def test_stats_snapshot_keys(self, small_graph):
        engine = DistributedTeaEngine(small_graph, unbiased_walk(), num_workers=2)
        _, stats, _, _ = engine.run(Workload(max_length=5, max_walks=10), seed=0)
        snap = stats.snapshot()
        for key in ("workers", "supersteps", "messages", "migration_rate",
                    "modeled_makespan", "compute_balance"):
            assert key in snap

    def test_memory_shards_sum_to_total(self, small_graph):
        engine = DistributedTeaEngine(small_graph, unbiased_walk(), num_workers=4)
        engine.prepare()
        reports = engine.memory_report_per_worker()
        total = sum(r.total for r in reports)
        full = engine.index.nbytes() + engine.graph.nbytes()
        assert total == pytest.approx(full, rel=0.05)


class TestEquivalenceWithSingleNode:
    def test_first_step_distribution_matches(self, small_graph):
        """Sharding must not change sampling statistics (§4.4's premise)."""
        spec = exponential_walk(scale=15.0)
        single = TeaEngine(small_graph, spec)
        single.prepare()
        dist = DistributedTeaEngine(small_graph, spec, num_workers=4)
        dist.prepare()

        v = int(np.argmax(small_graph.degrees()))
        d = small_graph.out_degree(v)
        weights = spec.weight_model.compute(small_graph)
        lo = small_graph.indptr[v]
        probs = weights[lo : lo + d] / weights[lo : lo + d].sum()

        rng = make_rng(0)
        counts = np.zeros(d)
        counters = CostCounters()
        for _ in range(15000):
            counts[dist.index.sample(v, d, rng, counters)] += 1
        assert chisquare_ok(counts, probs)

    def test_walk_length_distribution_matches(self, small_graph):
        """Aggregate walk behaviour is engine-independent."""
        spec = unbiased_walk()
        wl = Workload(max_length=10)
        single = TeaEngine(small_graph, spec).run(wl, seed=5)
        dist_paths, _, _, _ = DistributedTeaEngine(
            small_graph, spec, num_workers=3
        ).run(wl, seed=5)
        single_mean = np.mean([p.num_edges for p in single.paths])
        dist_mean = np.mean([p.num_edges for p in dist_paths])
        assert dist_mean == pytest.approx(single_mean, rel=0.15)
