"""Temporal network analysis: stats, reachability, closeness, transforms.

A tour of the analysis surface around the walk engine:

* dataset statistics and the analytic sampling-cost prediction (the
  closed-form version of the paper's Figure 2);
* exact temporal reachability and earliest-arrival times (the Figure 1
  temporal-connectivity rule, computed instead of sampled);
* temporal closeness centrality — who reaches the network fastest;
* the reversed-graph view: who *could have influenced* a vertex.

Run:  python examples/network_analysis.py
"""

import numpy as np

from repro import TemporalGraph, load_dataset
from repro.analytics.reachability import (
    earliest_arrival_times,
    temporal_closeness,
    temporal_reachability,
)
from repro.core.weights import WeightModel
from repro.graph.stats import graph_stats, predict_sampling_costs
from repro.graph.transform import largest_temporal_component, reverse


def main() -> None:
    graph = load_dataset("growth", seed=0, scale=0.3)
    stats = graph_stats(graph)
    print("dataset statistics:")
    for key, value in stats.snapshot().items():
        print(f"  {key}: {value}")

    pred = predict_sampling_costs(graph, WeightModel("exponential", scale=6.0))
    print("\nanalytic sampling cost (edges/step — closed-form Figure 2):")
    for key, value in pred.snapshot().items():
        print(f"  {key}: {value}")

    # Temporal reachability from the busiest vertex.
    hub = int(np.argmax(graph.degrees()))
    reach = temporal_reachability(graph, hub)
    arrival = earliest_arrival_times(graph, hub)
    finite = np.isfinite(arrival) & (np.arange(graph.num_vertices) != hub)
    print(
        f"\nvertex {hub} temporally reaches {reach.sum() - 1} of "
        f"{graph.num_vertices - 1} other vertices"
    )
    if finite.any():
        print(
            f"  median earliest arrival: t={np.median(arrival[finite]):.1f} "
            f"(graph spans t={stats.time_min:.0f}..{stats.time_max:.0f})"
        )

    # Closeness over a sample of sources: early, well-connected vertices win.
    sources = np.argsort(graph.degrees())[::-1][:20]
    closeness = temporal_closeness(graph, sources=sources)
    top = sources[np.argsort(closeness[sources])[::-1][:5]]
    print("\ntemporal closeness (top 5 of the 20 busiest sources):")
    for v in top:
        print(f"  vertex {v}: {closeness[v]:.1f}")

    # Reverse view: who could have led INTO the hub, in time order.
    rev = reverse(graph)
    influencers = temporal_reachability(rev, hub)
    print(
        f"\nreverse-reachability: {influencers.sum() - 1} vertices have a "
        f"time-respecting path INTO vertex {hub}"
    )

    sub, source, mask = largest_temporal_component(graph)
    print(
        f"\nlargest single-source temporal component: {mask.sum()} vertices "
        f"(source {source}), {sub.num_edges} internal edges"
    )


if __name__ == "__main__":
    main()
