"""Out-of-core execution: sampling with disk-resident trunks.

When the index exceeds memory, TEA falls back to PAT with small trunks,
keeps only trunk-boundary prefix sums resident, and reads exactly one
trunk per sampling step — O(trunkSize) bytes of I/O per step versus
GraphWalker's O(degree) full-neighborhood loads (paper Sections 3.2,
4.1; Figure 14). This example runs both out-of-core engines on the same
workload and prints the I/O ledger.

Run:  python examples/out_of_core.py
"""

from repro import (
    GraphWalkerEngine,
    TeaOutOfCoreEngine,
    Workload,
    load_dataset,
    temporal_node2vec,
)
from repro.telemetry import format_bytes


def main() -> None:
    graph = load_dataset("growth", seed=0)
    spec = temporal_node2vec(p=0.5, q=2.0)
    workload = Workload(max_length=80, max_walks=150)

    tea = TeaOutOfCoreEngine(graph, spec, trunk_size=10)
    gw = GraphWalkerEngine(graph, spec, out_of_core=True)

    tea_result = tea.run(workload, seed=9)
    gw_result = gw.run(workload, seed=9)

    print(f"graph: {graph}\nworkload: {workload.describe()}\n")
    header = f"{'engine':18s} {'walk time':>10s} {'I/O blocks':>11s} {'I/O bytes':>12s} {'resident mem':>13s}"
    print(header)
    print("-" * len(header))
    for result in (tea_result, gw_result):
        print(
            f"{result.engine:18s} "
            f"{result.walk_seconds:9.3f}s "
            f"{result.counters.io_blocks:11d} "
            f"{format_bytes(result.counters.io_bytes):>12s} "
            f"{format_bytes(result.memory.total):>13s}"
        )

    ratio = gw_result.counters.io_bytes / max(1, tea_result.counters.io_bytes)
    print(
        f"\nGraphWalker reads {ratio:.1f}x more bytes per workload: it loads "
        f"each vertex's full neighbor list (O(D)), TEA one trunk (O(trunkSize))."
    )
    print(
        f"TEA resident state is only the trunk-boundary prefix sums: "
        f"{format_bytes(tea.index.resident_nbytes())}."
    )


if __name__ == "__main__":
    main()
