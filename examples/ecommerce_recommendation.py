"""E-commerce walk corpus: temporal co-visitation recommendation.

The paper motivates temporal walks with e-commerce networks (Section 1):
"users' preferences evolve from time to time; static graph analysis
would ... result in inaccurate or misleading market decisions." This
example builds a bipartite user→item interaction stream, generates a
temporal node2vec walk corpus with TEA (what CTDNE/EHNA feed to their
embedding models), and derives item-to-item recommendations from walk
co-occurrence — the classic DeepWalk-style pipeline, minus the neural
net (out of scope for a systems library).

It then contrasts against a *static* walk corpus (uniform weights,
temporal order ignored by resetting times) to show the temporal bias
shifting recommendations toward the user's recent interests.

Run:  python examples/ecommerce_recommendation.py
"""

from collections import Counter, defaultdict

import numpy as np

from repro import TemporalGraph, TeaEngine, Workload, temporal_node2vec, unbiased_walk
from repro.graph.generators import temporal_bipartite

NUM_USERS = 120
NUM_ITEMS = 60
NUM_EVENTS = 4000


def build_graph(seed: int = 3) -> TemporalGraph:
    stream = temporal_bipartite(
        num_left=NUM_USERS,
        num_right=NUM_ITEMS,
        num_edges=NUM_EVENTS,
        alpha=0.8,
        time_horizon=365.0,  # one year of interactions
        seed=seed,
    )
    return TemporalGraph.from_stream(stream)


def item_id(v: int) -> int:
    return v - NUM_USERS


def is_item(v: int) -> bool:
    return v >= NUM_USERS


def walk_corpus(graph: TemporalGraph, spec, seed: int) -> list:
    engine = TeaEngine(graph, spec)
    workload = Workload(walks_per_vertex=2, max_length=12, max_walks=800)
    return engine.run(workload, seed=seed).paths


def co_visits(paths) -> dict:
    """Item→item co-occurrence counts within each walk (window = walk)."""
    table = defaultdict(Counter)
    for path in paths:
        items = [item_id(v) for v in path.vertices if is_item(v)]
        for i, a in enumerate(items):
            for b in items[i + 1 :]:
                if a != b:
                    table[a][b] += 1
                    table[b][a] += 1
    return table


def main() -> None:
    graph = build_graph()
    print(f"interaction graph: {graph}")

    temporal_paths = walk_corpus(graph, temporal_node2vec(p=0.5, q=2.0, scale=30.0), seed=11)
    static_paths = walk_corpus(graph, unbiased_walk(), seed=11)

    temporal_recs = co_visits(temporal_paths)
    static_recs = co_visits(static_paths)

    # Most-interacted items make the clearest demo anchors.
    popularity = Counter()
    for path in temporal_paths:
        popularity.update(item_id(v) for v in path.vertices if is_item(v))
    anchors = [item for item, _ in popularity.most_common(3)]

    print("\ntop-3 recommendations per anchor item:")
    print(f"{'anchor':>8} | {'temporal node2vec':^28} | {'static uniform':^28}")
    for anchor in anchors:
        t3 = ", ".join(f"{b}({c})" for b, c in temporal_recs[anchor].most_common(3))
        s3 = ", ".join(f"{b}({c})" for b, c in static_recs[anchor].most_common(3))
        print(f"{anchor:>8} | {t3:^28} | {s3:^28}")

    # Quantify how much the temporal bias concentrates on recent events:
    # average timestamp of edges traversed by each corpus.
    def mean_walk_time(paths):
        times = [t for p in paths for _, t in p.hops if t is not None]
        return float(np.mean(times)) if times else float("nan")

    print(
        f"\nmean traversed-edge timestamp: "
        f"temporal={mean_walk_time(temporal_paths):.1f} days, "
        f"static={mean_walk_time(static_paths):.1f} days "
        f"(temporal walks favour recent interactions)"
    )


if __name__ == "__main__":
    main()
