"""E-commerce recommendations served by the walk daemon.

The paper motivates temporal walks with e-commerce networks (Section 1):
"users' preferences evolve from time to time; static graph analysis
would ... result in inaccurate or misleading market decisions." This
example runs the full serving topology in one process: it builds a
bipartite user→item interaction stream, boots a `repro serve` daemon
(`WalkService`) over it, and asks the daemon for recommendations via
the HTTP API — the same `POST /recommend` a production client would
call. Concurrent anchor queries are issued from threads so the daemon's
request batcher coalesces them into shared frontier runs (check the
`coalesced` counter it prints).

It then contrasts the temporal node2vec recommendations against a
*static* walk corpus (uniform weights, temporal order ignored) to show
the temporal bias shifting recommendations toward recent interests.

Run:  python examples/ecommerce_recommendation.py
(Standalone daemon: `PYTHONPATH=src python -m repro.cli serve --help`.)
"""

import threading
from collections import Counter

import numpy as np

from repro import TemporalGraph
from repro.graph.generators import temporal_bipartite
from repro.serve import ServeClient, WalkService

NUM_USERS = 120
NUM_ITEMS = 60
NUM_EVENTS = 4000


def build_graph(seed: int = 3) -> TemporalGraph:
    stream = temporal_bipartite(
        num_left=NUM_USERS,
        num_right=NUM_ITEMS,
        num_edges=NUM_EVENTS,
        alpha=0.8,
        time_horizon=365.0,  # one year of interactions
        seed=seed,
    )
    return TemporalGraph.from_stream(stream)


def item_id(v: int) -> int:
    return v - NUM_USERS


def is_item(v: int) -> bool:
    return v >= NUM_USERS


def popular_items(client: ServeClient, n: int = 3) -> list:
    """One /walk query over every item vertex; rank items by visits."""
    corpus = client.walk(
        starts=list(range(NUM_USERS, NUM_USERS + NUM_ITEMS)),
        app="node2vec", p=0.5, q=2.0, scale=30.0,
        walks_per_vertex=2, max_length=12, seed=11,
    )
    popularity = Counter(
        item_id(v) for walk in corpus["walks"] for v in walk if is_item(v)
    )
    return [item for item, _ in popularity.most_common(n)]


def recommend(client: ServeClient, anchor: int, app: str, **params) -> list:
    """Top item co-visits for one anchor item, served by the daemon."""
    response = client.recommend(
        starts=[NUM_USERS + anchor],
        app=app,
        walks_per_vertex=24,
        max_length=12,
        seed=100 + anchor,
        top_k=12,  # over-fetch: walks alternate user/item, we keep items
        record_paths=False,
        **params,
    )
    return [
        (item_id(v), count)
        for v, count in response["recommendations"]
        if is_item(v)
    ][:3]


def main() -> None:
    graph = build_graph()
    print(f"interaction graph: {graph}")

    with WalkService(graph, engine="tea-batch", batch_window_ms=4.0) as service:
        client = ServeClient(port=service.port)
        print(f"daemon: http://{service.host}:{service.port} "
              f"({client.healthz()['status']})")

        anchors = popular_items(client)

        # Fire all anchor queries concurrently: compatible requests
        # coalesce into one frontier run inside the daemon.
        temporal_recs, static_recs = {}, {}

        def _query(anchor):
            temporal_recs[anchor] = recommend(
                client, anchor, app="node2vec", p=0.5, q=2.0, scale=30.0
            )
            static_recs[anchor] = recommend(client, anchor, app="unbiased")

        threads = [
            threading.Thread(target=_query, args=(a,)) for a in anchors
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        print("\ntop-3 recommendations per anchor item:")
        print(f"{'anchor':>8} | {'temporal node2vec':^28} | {'static uniform':^28}")
        for anchor in anchors:
            t3 = ", ".join(f"{b}({c})" for b, c in temporal_recs[anchor])
            s3 = ", ".join(f"{b}({c})" for b, c in static_recs[anchor])
            print(f"{anchor:>8} | {t3:^28} | {s3:^28}")

        # Quantify the temporal bias: average timestamp of edges the two
        # corpora traverse (served over /walk with paths + times).
        def mean_walk_time(app, **params):
            corpus = client.walk(
                starts=[NUM_USERS + a for a in anchors],
                app=app, walks_per_vertex=8, max_length=12, seed=7, **params,
            )
            times = [t for walk in corpus["times"] for t in walk]
            return float(np.mean(times)) if times else float("nan")

        temporal_t = mean_walk_time("node2vec", p=0.5, q=2.0, scale=30.0)
        static_t = mean_walk_time("unbiased")
        print(
            f"\nmean traversed-edge timestamp: "
            f"temporal={temporal_t:.1f} days, static={static_t:.1f} days "
            f"(temporal walks favour recent interactions)"
        )

        counters = client.stats()["counters"]
        print(
            f"daemon served {counters['served']} requests in "
            f"{counters['batches']} frontier runs "
            f"({counters['coalesced']} coalesced)"
        )


if __name__ == "__main__":
    main()
