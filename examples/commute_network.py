"""The paper's running example: the commuting network of Figure 1.

Demonstrates why temporal information matters (Section 1): a commuter
path must obey the temporal connectivity rule — out-edge times must
exceed in-edge times. We rebuild the toy graph, show that walks arriving
at vertex 7 from different sources see *different* candidate edge sets
(Figure 4), and estimate temporal reachability by Monte Carlo walks —
contrasting it against static reachability, which overcounts.

Run:  python examples/commute_network.py
"""

from collections import Counter

import numpy as np

from repro import TemporalGraph, TeaEngine, Workload, toy_commute_graph, unbiased_walk
from repro.rng import make_rng


def candidate_sets() -> None:
    graph = TemporalGraph.from_stream(toy_commute_graph())
    print("Vertex 7's out-edges (time-descending):")
    nbrs, times = graph.neighbors(7)
    print("  " + ", ".join(f"7->{v}@{t:g}" for v, t in zip(nbrs, times)))
    print("\nCandidate edge sets at vertex 7 by arriving edge (paper Figure 4):")
    for src, t in ((8, 0.0), (0, 3.0), (9, 4.0)):
        count = graph.candidate_count(7, t)
        cands = nbrs[:count]
        print(f"  arrive from {src} at t={t:g}: Γ = {sorted(int(v) for v in cands)}")


def temporal_reachability(start: int = 9, walks: int = 4000) -> None:
    """Monte Carlo estimate of where a commuter starting at ``start`` ends."""
    graph = TemporalGraph.from_stream(toy_commute_graph())
    engine = TeaEngine(graph, unbiased_walk())
    workload = Workload(
        walks_per_vertex=walks, max_length=4, start_vertices=[start]
    )
    result = engine.run(workload, seed=1)
    endpoints = Counter(path.vertices[-1] for path in result.paths)
    print(f"\nTemporal-walk endpoints from vertex {start} (length<=4, {walks} walks):")
    for vertex, count in endpoints.most_common():
        print(f"  vertex {vertex}: {count / walks:.1%}")
    # Static reachability for contrast: ignore times entirely.
    reach = {start}
    frontier = [start]
    while frontier:
        u = frontier.pop()
        for v in graph.neighbors(u)[0]:
            if int(v) not in reach:
                reach.add(int(v))
                frontier.append(int(v))
    print(f"static reachability from {start}: {sorted(reach)}")
    temporal = {v for v in endpoints}
    print(f"temporally reachable endpoints:    {sorted(temporal)}")
    print("(the gap is exactly the paths that violate time order)")


def main() -> None:
    candidate_sets()
    temporal_reachability()


if __name__ == "__main__":
    main()
