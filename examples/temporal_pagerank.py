"""Temporal analytics built atop TEA (paper Section 5.2).

The paper points out that personalized PageRank, SimRank and meta-path
walks have no established temporal variants but "can be conveniently
achieved by deploying them atop TEA". This example runs all three on a
small interaction network:

* temporal personalized PageRank — influence flowing only along
  time-respecting paths (and how it differs from ignoring time);
* temporal SimRank — similarity via coupled temporal walks;
* temporal meta-path walks — user→item→user patterns where the second
  user must interact *after* the first.

Run:  python examples/temporal_pagerank.py
"""

import numpy as np

from repro import TemporalGraph, unbiased_walk
from repro.analytics import (
    temporal_metapath_walks,
    temporal_pagerank,
    temporal_simrank,
)
from repro.graph.generators import temporal_bipartite, temporal_powerlaw

NUM_USERS = 40
NUM_ITEMS = 20


def pagerank_demo() -> None:
    graph = TemporalGraph.from_stream(
        temporal_powerlaw(150, 5000, alpha=0.9, time_horizon=300.0, seed=8)
    )
    source = int(np.argmax(graph.degrees()))
    scores = temporal_pagerank(
        graph, sources=[source], alpha=0.15, num_walks=3000, seed=0
    )
    top = np.argsort(scores)[::-1][:5]
    print(f"temporal PPR from hub vertex {source}:")
    for v in top:
        print(f"  vertex {v}: {scores[v]:.4f}")
    global_scores = temporal_pagerank(graph, alpha=0.15, num_walks=3000, seed=0)
    print(
        f"global temporal PageRank mass on top-5 hubs: "
        f"{global_scores[np.argsort(graph.degrees())[::-1][:5]].sum():.2f}"
    )


def simrank_demo() -> None:
    graph = TemporalGraph.from_stream(
        temporal_powerlaw(60, 2500, alpha=0.8, time_horizon=200.0, seed=9)
    )
    hubs = np.argsort(graph.degrees())[::-1][:3]
    a, b, c = (int(v) for v in hubs)
    print("\ntemporal SimRank (coupled temporal walks):")
    print(f"  s({a},{a}) = {temporal_simrank(graph, a, a):.3f}  (identity)")
    print(f"  s({a},{b}) = {temporal_simrank(graph, a, b, num_pairs=400, seed=1):.3f}")
    print(f"  s({a},{c}) = {temporal_simrank(graph, a, c, num_pairs=400, seed=1):.3f}")


def metapath_demo() -> None:
    stream = temporal_bipartite(NUM_USERS, NUM_ITEMS, 1500, seed=10)
    graph = TemporalGraph.from_stream(stream)
    # Types: 0 = user, 1 = item.
    types = np.zeros(graph.num_vertices, dtype=int)
    types[NUM_USERS:] = 1
    paths = temporal_metapath_walks(
        graph, types, metapath=[0, 1, 0], starts=range(10), num_cycles=3,
        spec=unbiased_walk(), seed=2,
    )
    print("\ntemporal meta-path walks (user -> item -> later user):")
    for path in paths[:5]:
        labels = [
            f"{'u' if types[v] == 0 else 'i'}{v if types[v] == 0 else v - NUM_USERS}"
            + ("" if t is None else f"@{t:.0f}")
            for v, t in path.hops
        ]
        print("  " + " -> ".join(labels))
    # Every walk alternates types and moves strictly forward in time.
    for path in paths:
        for (v1, t1), (v2, t2) in zip(path.hops, path.hops[1:]):
            assert types[v1] != types[v2]
            assert t1 is None or t2 > t1


def main() -> None:
    pagerank_demo()
    simrank_demo()
    metapath_demo()


if __name__ == "__main__":
    main()
