"""Temporal GNN mini-batch sampling served by TEA (paper §4.4).

The paper's discussion section predicts that temporal GNN training —
whose dominant cost is neighborhood *sampling* — "could benefit
enormously" from TEA. This example builds a TGN-style training data
path: for each batch of interactions, sample multi-hop recency-biased
temporal neighborhoods of both endpoints, never peeking at the future.
It then contrasts throughput against a naive per-query scan sampler
(what reference TGNN implementations do).

Run:  python examples/gnn_sampling.py
"""

import time

import numpy as np

from repro import TemporalGraph
from repro.gnn import TemporalNeighborSampler
from repro.graph.generators import temporal_powerlaw
from repro.rng import make_rng


def naive_sample(graph, nodes, times, k, rng):
    """Reference-style sampler: per query, scan the past and sample."""
    out = np.zeros((len(nodes), k), dtype=np.int64)
    mask = np.zeros((len(nodes), k), dtype=bool)
    for i, (v, t) in enumerate(zip(nodes, times)):
        nbrs, etimes = graph.neighbors(int(v))
        past = etimes < t
        cand = nbrs[past]
        ct = etimes[past]
        if cand.size == 0:
            continue
        w = np.exp((ct - ct.max()) / 20.0)
        p = w / w.sum()
        out[i] = rng.choice(cand, size=k, p=p)
        mask[i] = True
    return out, mask


def main() -> None:
    graph = TemporalGraph.from_stream(
        temporal_powerlaw(1500, 120_000, alpha=1.0, time_horizon=500.0, seed=30)
    )
    print(f"interaction graph: {graph}")

    sampler = TemporalNeighborSampler(graph, recency_scale=20.0, seed=0)

    # A TGN-style epoch slice: batches of interactions in time order.
    stream = graph.to_stream()
    batch = slice(80_000, 81_024)  # one 1024-interaction training batch
    seed_nodes = np.concatenate([stream.src[batch], stream.dst[batch]])
    seed_times = np.concatenate([stream.time[batch], stream.time[batch]])

    t0 = time.perf_counter()
    blocks = sampler.sample_blocks(seed_nodes, seed_times, fanouts=[10, 5])
    tea_s = time.perf_counter() - t0
    total = sum(int(b.mask.sum()) for b in blocks)
    print(
        f"\nTEA sampler: 2-hop blocks for {seed_nodes.size} queries "
        f"({total} sampled edges) in {tea_s * 1e3:.1f} ms"
    )
    for i, block in enumerate(blocks):
        print(f"  hop {i + 1}: fanout {block.fanout}, "
              f"{int(block.mask.sum())} real samples, "
              f"coverage {block.mask.any(axis=1).mean():.0%} of queries")

    rng = make_rng(0)
    t0 = time.perf_counter()
    naive_sample(graph, seed_nodes[:512], seed_times[:512], 10, rng)
    naive_s = (time.perf_counter() - t0) * (seed_nodes.size / 512)
    print(
        f"\nnaive per-query scan sampler (extrapolated for the same batch): "
        f"{naive_s * 1e3:.1f} ms -> TEA is ~{naive_s / tea_s:.1f}x faster, "
        f"and the gap grows with degree (the paper's §4.4 prediction)."
    )

    # The no-future-peeking guarantee, checked explicitly.
    for block in blocks:
        assert np.all(block.times[block.mask] < np.repeat(
            block.seed_times, block.fanout
        ).reshape(block.times.shape)[block.mask])
    print("verified: every sampled edge precedes its query time.")


if __name__ == "__main__":
    main()
