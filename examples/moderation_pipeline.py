"""Live graph churn: streaming arrivals + moderation deletions + queries.

A realistic serving scenario stitched from the paper's streaming support
(§3.5) and its future-work deletions (§4.4), both implemented in this
library:

* interactions arrive in time-ordered batches (a social/messaging feed);
* a moderation process *removes* edges (spam) and entire accounts;
* recommendation queries (temporal walks) run continuously against the
  live graph and must never traverse removed content;
* a query session caches prepared indices across repeated query shapes.

Run:  python examples/moderation_pipeline.py
"""

import numpy as np

from repro import TemporalGraph, Workload, exponential_walk
from repro.engines.mutable import MutableTeaEngine
from repro.engines.session import TeaSession
from repro.graph.generators import temporal_powerlaw
from repro.walks.apps import unbiased_walk


def moderation_with_deletions() -> None:
    rng = np.random.default_rng(0)
    graph = TemporalGraph.from_stream(
        temporal_powerlaw(200, 8000, alpha=0.9, time_horizon=300.0, seed=21)
    )
    engine = MutableTeaEngine(graph, exponential_walk(scale=50.0),
                              rebuild_threshold=0.25)
    engine.prepare()

    spammer = int(np.argmax(graph.degrees()))
    print(f"graph: {graph}")
    print(f"moderation target: vertex {spammer} "
          f"(degree {graph.out_degree(spammer)})\n")

    workload = Workload(walks_per_vertex=3, max_length=10,
                        start_vertices=list(range(40)))

    before = engine.run(workload, seed=1)
    visits_before = sum(
        1 for p in before.paths for v in p.vertices[1:] if v == spammer
    )

    # Moderation round 1: remove a third of the spammer's posts.
    removed = 0
    for position in range(0, graph.out_degree(spammer), 3):
        engine.index.delete_position(spammer, position)
        removed += 1
    mid = engine.run(workload, seed=1)

    # Moderation round 2: take the whole account down.
    engine.delete_vertex(spammer)
    after = engine.run(workload, seed=1)
    visits_after = sum(
        1 for p in after.paths for v in p.vertices[1:] if v == spammer
    )
    arrived_after = sum(
        1 for p in after.paths
        for (a, _), (b, _) in zip(p.hops, p.hops[1:]) if a == spammer
    )

    stats = engine.deletion_stats.snapshot()
    print(f"deleted {removed} edges, then the remaining account:")
    print(f"  walk steps before/mid/after: "
          f"{before.total_steps}/{mid.total_steps}/{after.total_steps}")
    print(f"  walks leaving the spammer after takedown: {arrived_after} (expected 0)")
    print(f"  deletion machinery: {stats}")
    assert arrived_after == 0


def query_session() -> None:
    graph = TemporalGraph.from_stream(
        temporal_powerlaw(300, 12_000, alpha=0.9, time_horizon=300.0, seed=22)
    )
    session = TeaSession(graph, max_engines=4)
    windows = [None, (0.0, 150.0), (150.0, 300.0)]
    workload = Workload(max_length=15, max_walks=100)
    print("\nserving 12 queries over 3 window shapes (engine cache at work):")
    for i in range(12):
        window = windows[i % len(windows)]
        spec = (unbiased_walk(time_window=window)
                if window else unbiased_walk())
        result = session.query(spec, workload, seed=i)
        print(f"  q{i:02d} window={str(window):18s} steps={result.total_steps:5d} "
              f"prep={result.prepare_seconds * 1e3:5.1f} ms")
    print(f"session stats: {session.stats.snapshot()}")
    print(f"resident index memory: {session.resident_index_bytes() / 1024:.0f} KiB")


def main() -> None:
    moderation_with_deletions()
    query_session()


if __name__ == "__main__":
    main()
