"""Temporal vs static walks for link prediction — the paper's motivation.

Section 1: "various graph learning projects identify that integrating
temporal information into random walks can dramatically improve graph
learning accuracy." This example measures that end to end:

1. split an interaction stream by time (train on the past, predict the
   future);
2. generate walk corpora with TEA under three specs — unbiased
   (time order respected but no recency bias), exponential temporal
   weights, and temporal node2vec;
3. train SGNS embeddings on each corpus and score held-out future edges
   against sampled non-edges (AUC).

Run:  python examples/link_prediction.py
"""

from repro.embeddings import temporal_link_prediction
from repro.graph.generators import temporal_powerlaw
from repro.walks.apps import exponential_walk, temporal_node2vec, unbiased_walk


def main() -> None:
    stream = temporal_powerlaw(
        num_vertices=120, num_edges=8000, alpha=0.9,
        time_horizon=400.0, seed=17,
    )
    print(f"stream: {len(stream)} interactions over {stream.time_range()}")
    print("training on the first 80% (by time), predicting the final 20%\n")

    specs = [
        unbiased_walk(),
        exponential_walk(scale=80.0),
        temporal_node2vec(p=0.5, q=2.0, scale=80.0),
    ]
    print(f"{'walk spec':14s} {'AUC':>6s} {'test edges':>11s}")
    print("-" * 34)
    for spec in specs:
        result = temporal_link_prediction(
            stream, spec, dim=32, walks_per_vertex=8, walk_length=10,
            epochs=4, seed=3,
        )
        print(f"{spec.name:14s} {result.auc:6.3f} {result.num_test_edges:11d}")
    print(
        "\nAll corpora respect temporal paths (TEA enforces that); the "
        "biased specs additionally weight recent edges, which is what "
        "helps predict the *future* — the paper's opening argument."
    )


if __name__ == "__main__":
    main()
