"""Streaming graph support: walk while edges keep arriving.

The paper's streaming setting (Section 3.5): a temporal graph arrives as
time-ordered batches (new shopping records, new messages, ...), and the
PAT/HPAT index is extended *incrementally* — old trunks stay intact, new
trunks are built for the arrivals, and higher hierarchy levels appear by
carry-merging (Figure 7). This example ingests an edge stream in
batches, interleaves walks after every batch, and compares the
incremental update cost against rebuilding from scratch (the Figure 13d
experiment, at demo scale).

Run:  python examples/streaming_updates.py
"""

import time

import numpy as np

from repro import StreamingTeaEngine, exponential_walk
from repro.core.incremental import VertexIncrementalHPAT
from repro.core.weights import WeightModel
from repro.graph.generators import temporal_powerlaw


def streaming_session() -> None:
    stream = temporal_powerlaw(
        num_vertices=300, num_edges=12_000, alpha=0.9, time_horizon=1000.0, seed=5
    )
    engine = StreamingTeaEngine(exponential_walk(scale=50.0))

    batch_size = 2_000
    print(f"ingesting {len(stream)} edges in batches of {batch_size}:")
    for i, batch in enumerate(stream.batches(batch_size)):
        t0 = time.perf_counter()
        engine.apply_batch(batch)
        ingest_s = time.perf_counter() - t0
        # Walk over everything seen so far — no rebuild happened.
        starts = engine.active_vertices()[:50]
        paths = engine.run_walks(starts, max_length=20, seed=i)
        mean_len = np.mean([p.num_edges for p in paths])
        print(
            f"  batch {i}: |E|={engine.num_edges:6d}  "
            f"ingest={ingest_s * 1e3:6.1f} ms  "
            f"walks={len(paths)}  mean_len={mean_len:.1f}  "
            f"index={engine.nbytes() / 1024:.0f} KiB"
        )


def incremental_vs_rebuild(degree: int = 50_000, batch: int = 500) -> None:
    """Append one batch to a high-degree vertex: incremental vs rebuild."""
    rng = np.random.default_rng(0)
    base_times = np.sort(rng.uniform(0, 1000.0, degree))
    new_times = np.sort(rng.uniform(1000.0, 1010.0, batch))
    model = WeightModel("exponential", scale=200.0)

    vert = VertexIncrementalHPAT(model)
    vert.append_batch(np.arange(degree), base_times)
    t0 = time.perf_counter()
    vert.append_batch(np.arange(batch), new_times)
    incremental_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    rebuilt = VertexIncrementalHPAT(model)
    rebuilt.append_batch(
        np.arange(degree + batch), np.concatenate([base_times, new_times])
    )
    rebuild_s = time.perf_counter() - t0

    print(
        f"\ndegree={degree}, batch={batch}: "
        f"incremental={incremental_s * 1e3:.1f} ms, "
        f"rebuild={rebuild_s * 1e3:.1f} ms, "
        f"speedup={rebuild_s / incremental_s:.0f}x (paper Figure 13d's regime)"
    )


def main() -> None:
    streaming_session()
    incremental_vs_rebuild()


if __name__ == "__main__":
    main()
