"""Quickstart: build a temporal graph, run TEA, inspect the results.

Covers the whole public surface in ~60 lines: dataset loading, the three
walk applications of the paper, engine construction, workload execution,
and the cost/memory accounting every run returns.

Run:  python examples/quickstart.py
"""

from repro import (
    TeaEngine,
    Workload,
    exponential_walk,
    linear_walk,
    load_dataset,
    temporal_node2vec,
)


def main() -> None:
    # A scaled-down analogue of the paper's 'growth' dataset (Table 3).
    graph = load_dataset("growth", seed=0)
    print(f"graph: {graph}")

    # R=1 walk per vertex, L=80 max steps — the paper's workload — capped
    # to 200 start vertices so the demo finishes in seconds.
    workload = Workload(walks_per_vertex=1, max_length=80, max_walks=200)

    for spec in (linear_walk(), exponential_walk(), temporal_node2vec(p=0.5, q=2.0)):
        engine = TeaEngine(graph, spec)  # HPAT + auxiliary index
        result = engine.run(workload, seed=42)
        print(
            f"{spec.name:12s} walks={result.num_walks:4d} "
            f"steps={result.total_steps:6d} "
            f"prepare={result.prepare_seconds:.3f}s "
            f"walk={result.walk_seconds:.3f}s "
            f"edges/step={result.counters.edges_per_step:.2f}"
        )

    # Every path is a valid temporal path: strictly increasing edge times.
    engine = TeaEngine(graph, exponential_walk())
    result = engine.run(Workload(max_length=10, max_walks=5), seed=7)
    print("\nsample paths (vertex@arrival-time):")
    for path in result.paths:
        print("  " + " -> ".join(f"{v}" if t is None else f"{v}@{t:g}" for v, t in path.hops))

    print("\nmemory breakdown of the TEA index:")
    print(engine.memory_report().pretty())


if __name__ == "__main__":
    main()
