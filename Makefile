# Convenience targets for the TEA reproduction.

PYTHON ?= python

.PHONY: install test stats-smoke scaling-smoke ooc-smoke chaos-smoke \
        telemetry-smoke bench-history-smoke kernel-smoke serve-smoke \
        ingest-smoke lint-clocks bench bench-quick examples lint clean

install:
	$(PYTHON) setup.py develop

test: lint-clocks kernel-smoke stats-smoke scaling-smoke ooc-smoke \
      chaos-smoke telemetry-smoke bench-history-smoke serve-smoke \
      ingest-smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/

# Sampling-kernel smoke: fused numpy (and numba, when installed)
# backends bit-identical to the preserved legacy kernel, graceful
# fallback when numba is absent, and factorized-vs-rebuilt decay-weight
# equivalence for the streaming radix forest.
kernel-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.kernels.smoke
	@echo "kernel-smoke: backend parity + factorized bias hold"

# End-to-end telemetry smoke: run a tiny walk with --stats, write the
# JSON run report, then replay it (the replay validates the schema and
# exits nonzero on violations).
stats-smoke:
	mkdir -p bench_results
	PYTHONPATH=src $(PYTHON) -m repro walk --dataset tiny --engine tea \
		--app exponential --length 10 --max-walks 50 --stats \
		--trace-out bench_results/stats_smoke.json \
		--prom-out bench_results/stats_smoke.prom
	PYTHONPATH=src $(PYTHON) -m repro stats --report bench_results/stats_smoke.json >/dev/null
	@echo "stats-smoke: run report validated"

# Parallel walk executor smoke: sweep 1 and 2 workers on a tiny graph,
# asserting bit-determinism across worker counts, telemetry conservation
# (sum of per-worker steps == serial steps), warm-pool reuse (second run
# pays zero pool startup), and no wall-time regression (>= 1.0x speedup
# on multi-core hosts; an overhead floor on 1 core). --gate additionally
# runs the recorded speedup gate on >=4-core hosts: a >=2s-serial
# workload must reach >2x at 4 process workers (bench history:
# walk_scaling_gate.jsonl); smaller hosts append a skip note instead.
scaling-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.parallel.scaling --smoke --gate
	@echo "scaling-smoke: parallel invariants hold"

# Out-of-core smoke: scalar-vs-batched step parity at max_length=1,
# coalescing (strictly fewer backing reads), cache hit-rate floor,
# prefetch conservation and fixed-seed determinism.
ooc-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.engines.tea_outofcore.smoke
	@echo "ooc-smoke: out-of-core invariants hold"

# Resilience chaos smoke: inject every failure mode (worker crash, hang,
# transient I/O, trunk corruption, mid-batch streaming failure) and
# assert the contracts: retries keep results bit-identical, degradation
# is recorded, scrub locates corruption, rollbacks leave no residue.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.resilience.smoke
	@echo "chaos-smoke: all failure modes handled"

# Observability smoke: profiled root phase times within 10% of wall with
# <5% self-measured overhead, collapsed stacks parse, and a 4-worker
# process-backend run whose events all share one run_id (including at
# least one event shipped back from a worker process).
telemetry-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.telemetry.smoke
	@echo "telemetry-smoke: profiler + event-log invariants hold"

# Bench-history smoke: two synthetic runs in a temp store; compare must
# flag an injected 20% walk_s regression with exit 1 and pass a clean
# re-run with exit 0.
bench-history-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.benchhistory.smoke
	@echo "bench-history-smoke: regression gate behaves"

# Serving smoke: boot a real daemon on a loopback port and check the
# three properties serving must never lose — staged-batch responses
# bit-identical to solo runs, 429s (and telemetry conservation) when
# the admission queue fills, and a clean bounded-join shutdown.
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.serve.smoke
	@echo "serve-smoke: parity + admission + shutdown hold"

# Durable-ingest smoke: bulk columnar ingest bit-identical to batched
# ingest (and clearly faster than per-edge apply), WAL close/reopen and
# post-checkpoint recovery bit-identical, pinned epochs byte-stable
# under concurrent ingest, and scrub reporting the store clean.
ingest-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.streaming.smoke
	@echo "ingest-smoke: durability + epoch isolation hold"

# Clock discipline: engine code must take time from
# repro.telemetry.clock, never raw time.time()/perf_counter().
lint-clocks:
	$(PYTHON) tools/lint_clocks.py

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Smaller datasets + fewer walks: a fast sanity pass.
bench-quick:
	REPRO_BENCH_SCALE=0.25 REPRO_BENCH_R=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis \
	       bench_results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
