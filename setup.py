"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` take the legacy
``setup.py develop`` path. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
